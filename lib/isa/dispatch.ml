(* Threaded-dispatch execution: each basic block is translated once, on
   first execution, into a chain of per-instruction closures with every
   operand access, cycle charge and fall-through target specialised at
   translation time — so steady-state execution pays no fetch, no decode
   and no operand match.  The adjacent compare-branch and loop-bottom
   poll-branch pairs the compiler emits are fused into superinstructions.

   Semantics are the fetch/decode interpreter's, bit for bit: the
   closures are built from {!Machine}'s own primitives, replicate its
   (right-to-left) operand evaluation orders with explicit lets, charge
   cycles/insns before the operation, leave the PC at the faulting
   instruction on a trap, and check fuel before every instruction.  A
   run under this engine and a run under [Machine.run] produce the same
   stop, the same context, the same memory and the same counters. *)

module M = Machine

(* why a step returned to the driver; [S_jump] is a dynamic control
   transfer (indirect call, return) whose target must be re-resolved
   through the text map, carrying the fuel it has left *)
type stop =
  | S_fuel
  | S_poll
  | S_syscall of int
  | S_bottom
  | S_halt
  | S_jump of int

type step = M.ctx -> int -> stop

type stats = {
  mutable st_blocks : int;  (* straight-line runs translated *)
  mutable st_insns : int;  (* instructions translated *)
  mutable st_fused : int;  (* superinstruction pairs fused *)
  mutable st_slices : int;  (* run slices driven *)
}

type table = {
  t_code : Code.t;
  t_base : int;
  t_mem : Memory.t;  (* validity token: a fresh memory voids the table *)
  t_steps : step option array;  (* per instruction index, filled lazily *)
  t_fused : bool array;  (* instruction heads a fused superinstruction *)
  t_stats : stats;
}

type cache = {
  mutable tables : ((int32 * int) * table) list;
      (* keyed per code instance: (code OID, instance tag) *)
  stats : stats;
}

let create_cache () =
  {
    tables = [];
    stats = { st_blocks = 0; st_insns = 0; st_fused = 0; st_slices = 0 };
  }

let stats c = c.stats

(* Register accesses are fully resolved at translation time: the SPARC
   %g0 special case and the bounds check collapse into the choice of
   closure, so a steady-state access is a single unsafe array read.
   (The interpreter re-decides both per access — including a
   polymorphic compare on the arch family, a C call.)  An out-of-range
   register falls back to {!Machine.reg} so malformed code raises the
   same exception the interpreter would. *)
let reg_is_g0 (code : Code.t) r =
  (match code.Code.arch.Arch.family with Arch.Sparc -> true | _ -> false)
  && r = 0

let reg_in_range (code : Code.t) r =
  r >= 0 && r < Reg.count code.Code.arch.Arch.family

(* [Int32.compare] without the C call; exact -1/0/1, as the interpreter
   stores into [cc] *)
let cmp32 a b =
  let a = Int32.to_int a and b = Int32.to_int b in
  if a < b then -1 else if a > b then 1 else 0

(* the operator match of {!Machine.int_binop}, done once at translation *)
let binop_fn (op : Insn.binop) : int32 -> int32 -> int32 =
  match op with
  | Insn.Add -> Int32.add
  | Insn.Sub -> Int32.sub
  | Insn.Mul -> Int32.mul
  | Insn.Div ->
    fun a b ->
      if Int32.to_int b = 0 then raise (M.Trapped Suspend.Div_zero)
      else Int32.div a b
  | Insn.Mod ->
    fun a b ->
      if Int32.to_int b = 0 then raise (M.Trapped Suspend.Div_zero)
      else Int32.rem a b
  | Insn.And -> Int32.logand
  | Insn.Or -> Int32.logor
  | Insn.Xor -> Int32.logxor

(* specialise an operand read: the match on the addressing mode happens
   here, once, instead of on every execution *)
let get_c code mem (op : Operand.t) : M.ctx -> int32 =
  match op with
  | Operand.Reg r when reg_is_g0 code r -> fun _ -> 0l
  | Operand.Reg r when reg_in_range code r ->
    fun ctx -> Array.unsafe_get ctx.M.regs r
  | Operand.Reg r -> fun ctx -> M.reg ctx r
  | Operand.Imm i -> fun _ -> i
  | Operand.Mem (Operand.Abs a) -> fun _ -> M.load mem (M.addr_of a)
  | Operand.Mem (Operand.Disp (r, d)) when reg_in_range code r && not (reg_is_g0 code r) ->
    fun ctx -> M.load mem (M.addr_of (Array.unsafe_get ctx.M.regs r) + d)
  | Operand.Mem (Operand.Disp (r, d)) ->
    fun ctx -> M.load mem (M.addr_of (M.reg ctx r) + d)
  | Operand.Mem (Operand.Autoinc r) ->
    fun ctx ->
      let a = M.addr_of (M.reg ctx r) in
      let v = M.load mem a in
      M.set_reg ctx r (Int32.of_int (a + 4));
      v
  | Operand.Mem (Operand.Autodec r) ->
    fun ctx ->
      let a = M.addr_of (M.reg ctx r) - 4 in
      M.set_reg ctx r (Int32.of_int a);
      M.load mem a

let set_c code mem (op : Operand.t) : M.ctx -> int32 -> unit =
  match op with
  | Operand.Reg r when reg_is_g0 code r -> fun _ _ -> ()
  | Operand.Reg r when reg_in_range code r ->
    fun ctx v -> Array.unsafe_set ctx.M.regs r v
  | Operand.Reg r -> fun ctx v -> M.set_reg ctx r v
  | Operand.Imm _ ->
    fun _ _ -> raise (M.Trapped (Suspend.Bad_insn "immediate destination"))
  | Operand.Mem (Operand.Abs a) -> fun _ v -> M.store mem (M.addr_of a) v
  | Operand.Mem (Operand.Disp (r, d)) when reg_in_range code r && not (reg_is_g0 code r) ->
    fun ctx v -> M.store mem (M.addr_of (Array.unsafe_get ctx.M.regs r) + d) v
  | Operand.Mem (Operand.Disp (r, d)) ->
    fun ctx v -> M.store mem (M.addr_of (M.reg ctx r) + d) v
  | Operand.Mem (Operand.Autoinc r) ->
    fun ctx v ->
      let a = M.addr_of (M.reg ctx r) in
      M.store mem a v;
      M.set_reg ctx r (Int32.of_int (a + 4))
  | Operand.Mem (Operand.Autodec r) ->
    fun ctx v ->
      let a = M.addr_of (M.reg ctx r) - 4 in
      M.set_reg ctx r (Int32.of_int a);
      M.store mem a v

(* a step that hands control back to the driver (fall-through off the
   end of an image, or a branch target outside it): the driver redoes
   the text-map lookup exactly as the interpreter's fetch would *)
let escape : step = fun _ fuel -> if fuel <= 0 then S_fuel else S_jump fuel

(* instructions that end a straight-line translation run *)
let is_terminator = function
  | Insn.Bcc _ | Insn.Br _ | Insn.Jmp_abs _ | Insn.Jsr_ind _ | Insn.Vax_ret
  | Insn.Rts | Insn.Retl | Insn.Syscall _ | Insn.Halt -> true
  | Insn.Mov _ | Insn.Bin3 _ | Insn.Bin2 _ | Insn.Fbin3 _ | Insn.Fbin2 _
  | Insn.Neg _ | Insn.Fneg _ | Insn.Cvt_if _ | Insn.Cvt_fi _ | Insn.Cmp _
  | Insn.Fcmp _ | Insn.Push _ | Insn.Vax_entry _ | Insn.Link _ | Insn.Unlk
  | Insn.Save _ | Insn.Restore | Insn.Sethi _ | Insn.Poll _ | Insn.Remque _
  | Insn.Nop -> false

(* can [insns.(i); insns.(i+1)] fuse into one superinstruction?  The two
   codegen hot pairs: compare-then-branch, and the loop-bottom
   poll-then-back-branch. *)
let fusable a b =
  match (a, b) with
  | Insn.Cmp _, Insn.Bcc _ | Insn.Poll _, Insn.Br _ -> true
  | _ -> false

(* --- micro-ops: the register/immediate/frame-slot subset of the ISA
   whose only possible exit is a trap.  A straight-line prefix of these
   runs in one tight match loop — no per-instruction closure call, and
   the fuel, counters and PC settle once per batch instead of once per
   instruction.  A trap mid-batch is repaired to exact per-instruction
   accounting (cycles and insns up to and including the faulting op, PC
   on it) before it propagates, so the batch is observationally
   identical to the closure chain. *)
type uop =
  | U_nop
  | U_mov_rr of int * int  (* rs, rd *)
  | U_mov_ir of int32 * int  (* boxed-once immediate, rd *)
  | U_mov_mr of int * int * int  (* base, disp, rd *)
  | U_mov_md of int * int  (* base, disp: load for fault fidelity, drop *)
  | U_mov_rm of int * int * int  (* rs, base, disp *)
  | U_mov_im of int * int * int  (* imm bits, base, disp *)
  | U_mov_mm of int * int * int * int  (* src base/disp, dst base/disp *)
  | U_neg_rr of int * int
  | U_add of int * int * int  (* ra, rb, rd *)
  | U_sub of int * int * int
  | U_mul of int * int * int
  | U_div of int * int * int
  | U_mod of int * int * int
  | U_and of int * int * int
  | U_or of int * int * int
  | U_xor of int * int * int
  | U_cmp_rr of int * int
  | U_cmp_ri of int * int  (* ra, imm as signed int *)
  | U_cmp_ir of int * int  (* imm as signed int, rb *)
  | U_cc_const of int

(* classify one instruction; [None] ends the micro prefix (memory modes
   with side effects, floats, stack ops, control flow, polls — anything
   that can exit other than by trapping, or that the loop doesn't
   inline) *)
let uop_of (code : Code.t) j : uop option =
  let g0 r = reg_is_g0 code r in
  let ok r = reg_in_range code r && not (reg_is_g0 code r) in
  let src = function
    | Operand.Reg r when g0 r -> Some (`I 0l)
    | Operand.Reg r when ok r -> Some (`R r)
    | Operand.Imm i -> Some (`I i)
    | Operand.Mem (Operand.Disp (r, d)) when ok r -> Some (`S (r, d))
    | _ -> None
  in
  let dst = function
    | Operand.Reg r when g0 r -> Some `D
    | Operand.Reg r when ok r -> Some (`R r)
    | Operand.Mem (Operand.Disp (r, d)) when ok r -> Some (`S (r, d))
    | _ -> None
  in
  match code.Code.insns.(j) with
  | Insn.Mov (a, b) ->
    (match (src a, dst b) with
    | Some (`R rs), Some (`R rd) -> Some (U_mov_rr (rs, rd))
    | Some (`I v), Some (`R rd) -> Some (U_mov_ir (v, rd))
    | Some (`S (rb, d)), Some (`R rd) -> Some (U_mov_mr (rb, d, rd))
    | Some (`R rs), Some (`S (rb, d)) -> Some (U_mov_rm (rs, rb, d))
    | Some (`I v), Some (`S (rb, d)) -> Some (U_mov_im (Int32.to_int v, rb, d))
    | Some (`S (sb, sd)), Some (`S (db, dd)) -> Some (U_mov_mm (sb, sd, db, dd))
    | Some (`S (rb, d)), Some `D -> Some (U_mov_md (rb, d))
    | Some (`R _ | `I _), Some `D -> Some U_nop
    | _ -> None)
  | Insn.Bin3 (op, a, b, c) ->
    (match (a, b, c) with
    | Operand.Reg ra, Operand.Reg rb, Operand.Reg rc when ok ra && ok rb && ok rc
      ->
      Some
        (match op with
        | Insn.Add -> U_add (ra, rb, rc)
        | Insn.Sub -> U_sub (ra, rb, rc)
        | Insn.Mul -> U_mul (ra, rb, rc)
        | Insn.Div -> U_div (ra, rb, rc)
        | Insn.Mod -> U_mod (ra, rb, rc)
        | Insn.And -> U_and (ra, rb, rc)
        | Insn.Or -> U_or (ra, rb, rc)
        | Insn.Xor -> U_xor (ra, rb, rc))
    | _ -> None)
  | Insn.Cmp (a, b) ->
    (match (src a, src b) with
    | Some (`R ra), Some (`R rb) -> Some (U_cmp_rr (ra, rb))
    | Some (`R ra), Some (`I ib) -> Some (U_cmp_ri (ra, Int32.to_int ib))
    | Some (`I ia), Some (`R rb) -> Some (U_cmp_ir (Int32.to_int ia, rb))
    | Some (`I ia), Some (`I ib) -> Some (U_cc_const (cmp32 ia ib))
    | _ -> None)
  | Insn.Neg (a, b) ->
    (match (a, b) with
    | Operand.Reg ra, Operand.Reg rb when ok ra && ok rb ->
      Some (U_neg_rr (ra, rb))
    | _ -> None)
  | Insn.Sethi (i, r) ->
    if ok r then Some (U_mov_ir (Int32.shift_left i 10, r))
    else if g0 r then Some U_nop
    else None
  | Insn.Nop -> Some U_nop
  | _ -> None

(* shadow micro-ops: the register fields of a batch are renamed at
   translation time to slots of a per-batch untagged [int] scratch
   array, so intermediate values travel unboxed — no [Int32] allocation
   and no write barrier per operation, only one flush of the written
   registers when the batch retires (or, on a trap, of exactly the
   writes that preceded the faulting op) *)
type suop =
  | SU_nop
  | SU_mov of int * int  (* src slot, dst slot *)
  | SU_mov_i of int * int  (* sign-extended immediate, dst slot *)
  | SU_load of int * int * int  (* base slot, disp, dst slot *)
  | SU_load_drop of int * int  (* load for fault fidelity, drop *)
  | SU_store of int * int * int  (* src slot, base slot, disp *)
  | SU_store_i of int * int * int  (* imm bits, base slot, disp *)
  | SU_store_mm of int * int * int * int  (* src base/disp, dst base/disp *)
  | SU_neg of int * int
  | SU_add of int * int * int  (* a slot, b slot, dst slot *)
  | SU_sub of int * int * int
  | SU_mul of int * int * int
  | SU_div of int * int * int
  | SU_mod of int * int * int
  | SU_and of int * int * int
  | SU_or of int * int * int
  | SU_xor of int * int * int
  | SU_cmp of int * int
  | SU_cmp_i of int * int  (* slot, signed imm *)
  | SU_cmp_ni of int * int  (* signed imm, slot *)
  | SU_cc of int

(* the batching superblock for the head slot of a run whose prefix
   [idx..idx+plen-1] is all micro-ops.  With fuel for the whole prefix
   it runs the tight loop and settles counters, fuel and PC once; short
   on fuel it falls back to [slow], the per-instruction chain, which
   stops at the exact instruction the interpreter would.

   Arithmetic runs in the untagged int domain on sign-extended values;
   [sx] renormalises after every operation, which makes wrap-around,
   [min_int32] negation/division and bitwise ops all agree bit for bit
   with the interpreter's [Int32] path (the flush's [Int32.of_int]
   keeps the low 32 bits).  Register access is exact — classification
   already folded %g0 to an immediate and proved every index in range —
   and frame-slot access inlines [addr_of]'s mask-and-nil-check and
   {!Memory}'s own bounds test.  Every trapping site repairs exact
   per-instruction state first — registers written by preceding ops
   flushed, cycles and insns charged up to and including the faulting
   op, PC resting on it — so a trap is indistinguishable from the
   closure chain's. *)
let micro_wrap (tbl : table) idx plen ~(slow : step) ~(after : step) : step =
  let code = tbl.t_code in
  let mem = tbl.t_mem in
  let base = tbl.t_base in
  let uops =
    Array.init plen (fun m ->
        match uop_of code (idx + m) with Some u -> u | None -> assert false)
  in
  let pc_at = Array.init plen (fun m -> base + code.Code.offsets.(idx + m)) in
  let cyc_to = Array.make plen 0 in
  let acc = ref 0 in
  for m = 0 to plen - 1 do
    acc := !acc + code.Code.insn_cycles.(idx + m);
    cyc_to.(m) <- !acc
  done;
  let total_cyc = !acc in
  let end_pc =
    base + code.Code.offsets.(idx + plen - 1) + code.Code.insn_sizes.(idx + plen - 1)
  in
  (* register renaming: each architectural register the prefix touches
     gets one scratch slot; registers read before being written are
     preloaded, registers ever written are flushed at retirement *)
  let slot_of = Hashtbl.create 8 in
  let nslots = ref 0 in
  let preloads = ref [] in
  let writes = ref [] in
  let rslot r =
    match Hashtbl.find_opt slot_of r with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      Hashtbl.add slot_of r s;
      preloads := (s, r) :: !preloads;
      s
  in
  let wslot m r =
    let s =
      match Hashtbl.find_opt slot_of r with
      | Some s -> s
      | None ->
        let s = !nslots in
        incr nslots;
        Hashtbl.add slot_of r s;
        s
    in
    writes := (m, s, r) :: !writes;
    s
  in
  let suops =
    Array.mapi
      (fun m u ->
        match u with
        | U_nop -> SU_nop
        | U_mov_rr (rs, rd) ->
          let a = rslot rs in
          SU_mov (a, wslot m rd)
        | U_mov_ir (v, rd) -> SU_mov_i (Int32.to_int v, wslot m rd)
        | U_mov_mr (rb, d, rd) ->
          let b = rslot rb in
          SU_load (b, d, wslot m rd)
        | U_mov_md (rb, d) -> SU_load_drop (rslot rb, d)
        | U_mov_rm (rs, rb, d) ->
          let a = rslot rs in
          SU_store (a, rslot rb, d)
        | U_mov_im (v, rb, d) -> SU_store_i (v, rslot rb, d)
        | U_mov_mm (sb, sd, db, dd) ->
          let s = rslot sb in
          SU_store_mm (s, sd, rslot db, dd)
        | U_neg_rr (rs, rd) ->
          let a = rslot rs in
          SU_neg (a, wslot m rd)
        | U_add (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_add (a, b, wslot m rd)
        | U_sub (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_sub (a, b, wslot m rd)
        | U_mul (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_mul (a, b, wslot m rd)
        | U_div (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_div (a, b, wslot m rd)
        | U_mod (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_mod (a, b, wslot m rd)
        | U_and (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_and (a, b, wslot m rd)
        | U_or (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_or (a, b, wslot m rd)
        | U_xor (ra, rb, rd) ->
          let a = rslot ra in
          let b = rslot rb in
          SU_xor (a, b, wslot m rd)
        | U_cmp_rr (ra, rb) ->
          let a = rslot ra in
          SU_cmp (a, rslot rb)
        | U_cmp_ri (ra, ib) -> SU_cmp_i (rslot ra, ib)
        | U_cmp_ir (ia, rb) -> SU_cmp_ni (ia, rslot rb)
        | U_cc_const c -> SU_cc c)
      uops
  in
  let pre_s, pre_r =
    let l = !preloads in
    (Array.of_list (List.map fst l), Array.of_list (List.map snd l))
  in
  let writes_arr = Array.of_list (List.rev !writes) in
  let flush_s, flush_r =
    let seen = Hashtbl.create 8 in
    let l =
      List.filter
        (fun (_, _, r) ->
          if Hashtbl.mem seen r then false
          else begin
            Hashtbl.add seen r ();
            true
          end)
        (Array.to_list writes_arr)
    in
    ( Array.of_list (List.map (fun (_, s, _) -> s) l),
      Array.of_list (List.map (fun (_, _, r) -> r) l) )
  in
  let scratch = Array.make (max 1 !nslots) 0 in
  (* renormalise to the sign-extended 32-bit domain *)
  let sx v = ((v land 0xFFFF_FFFF) lxor 0x8000_0000) - 0x8000_0000 in
  let fault (ctx : M.ctx) m t : 'a =
    let n = Array.length writes_arr in
    let k = ref 0 in
    let continue = ref true in
    while !continue && !k < n do
      let wm, s, r = writes_arr.(!k) in
      if wm < m then begin
        ctx.M.regs.(r) <- Int32.of_int scratch.(s);
        incr k
      end
      else continue := false
    done;
    ctx.M.cycles <- ctx.M.cycles + Array.unsafe_get cyc_to m;
    ctx.M.insns <- ctx.M.insns + m + 1;
    ctx.M.pc <- Array.unsafe_get pc_at m;
    raise (M.Trapped t)
  in
  let low = Memory.low_bound in
  let rec go ctx i =
    if i < plen then begin
      (match Array.unsafe_get suops i with
      | SU_nop -> ()
      | SU_mov (a, dst) ->
        Array.unsafe_set scratch dst (Array.unsafe_get scratch a)
      | SU_mov_i (v, dst) -> Array.unsafe_set scratch dst v
      | SU_load (b, d, dst) ->
        let a = Array.unsafe_get scratch b land 0xFFFF_FFFF in
        if a = 0 then fault ctx i Suspend.Nil_deref;
        let a = a + d in
        if a < low || a + 4 > Memory.size mem then fault ctx i (Suspend.Mem_fault a);
        Array.unsafe_set scratch dst (sx (Memory.unsafe_load32_bits mem a))
      | SU_load_drop (b, d) ->
        let a = Array.unsafe_get scratch b land 0xFFFF_FFFF in
        if a = 0 then fault ctx i Suspend.Nil_deref;
        let a = a + d in
        if a < low || a + 4 > Memory.size mem then fault ctx i (Suspend.Mem_fault a);
        ignore (Memory.unsafe_load32_bits mem a)
      | SU_store (vs, b, d) ->
        let a = Array.unsafe_get scratch b land 0xFFFF_FFFF in
        if a = 0 then fault ctx i Suspend.Nil_deref;
        let a = a + d in
        if a < low || a + 4 > Memory.size mem then fault ctx i (Suspend.Mem_fault a);
        Memory.unsafe_store32_bits mem a (Array.unsafe_get scratch vs)
      | SU_store_i (v, b, d) ->
        let a = Array.unsafe_get scratch b land 0xFFFF_FFFF in
        if a = 0 then fault ctx i Suspend.Nil_deref;
        let a = a + d in
        if a < low || a + 4 > Memory.size mem then fault ctx i (Suspend.Mem_fault a);
        Memory.unsafe_store32_bits mem a v
      | SU_store_mm (sb, sd, db, dd) ->
        let a = Array.unsafe_get scratch sb land 0xFFFF_FFFF in
        if a = 0 then fault ctx i Suspend.Nil_deref;
        let a = a + sd in
        if a < low || a + 4 > Memory.size mem then fault ctx i (Suspend.Mem_fault a);
        let v = Memory.unsafe_load32_bits mem a in
        let a2 = Array.unsafe_get scratch db land 0xFFFF_FFFF in
        if a2 = 0 then fault ctx i Suspend.Nil_deref;
        let a2 = a2 + dd in
        if a2 < low || a2 + 4 > Memory.size mem then fault ctx i (Suspend.Mem_fault a2);
        Memory.unsafe_store32_bits mem a2 v
      | SU_neg (a, dst) ->
        Array.unsafe_set scratch dst (sx (-Array.unsafe_get scratch a))
      | SU_add (a, b, dst) ->
        Array.unsafe_set scratch dst
          (sx (Array.unsafe_get scratch a + Array.unsafe_get scratch b))
      | SU_sub (a, b, dst) ->
        Array.unsafe_set scratch dst
          (sx (Array.unsafe_get scratch a - Array.unsafe_get scratch b))
      | SU_mul (a, b, dst) ->
        Array.unsafe_set scratch dst
          (sx (Array.unsafe_get scratch a * Array.unsafe_get scratch b))
      | SU_div (a, b, dst) ->
        let ib = Array.unsafe_get scratch b in
        if ib = 0 then fault ctx i Suspend.Div_zero;
        Array.unsafe_set scratch dst (sx (Array.unsafe_get scratch a / ib))
      | SU_mod (a, b, dst) ->
        let ib = Array.unsafe_get scratch b in
        if ib = 0 then fault ctx i Suspend.Div_zero;
        Array.unsafe_set scratch dst (sx (Array.unsafe_get scratch a mod ib))
      | SU_and (a, b, dst) ->
        Array.unsafe_set scratch dst
          (Array.unsafe_get scratch a land Array.unsafe_get scratch b)
      | SU_or (a, b, dst) ->
        Array.unsafe_set scratch dst
          (Array.unsafe_get scratch a lor Array.unsafe_get scratch b)
      | SU_xor (a, b, dst) ->
        Array.unsafe_set scratch dst
          (Array.unsafe_get scratch a lxor Array.unsafe_get scratch b)
      | SU_cmp (a, b) ->
        let ia = Array.unsafe_get scratch a
        and ib = Array.unsafe_get scratch b in
        ctx.M.cc <- (if ia < ib then -1 else if ia > ib then 1 else 0)
      | SU_cmp_i (a, ib) ->
        let ia = Array.unsafe_get scratch a in
        ctx.M.cc <- (if ia < ib then -1 else if ia > ib then 1 else 0)
      | SU_cmp_ni (ia, b) ->
        let ib = Array.unsafe_get scratch b in
        ctx.M.cc <- (if ia < ib then -1 else if ia > ib then 1 else 0)
      | SU_cc c -> ctx.M.cc <- c);
      go ctx (i + 1)
    end
  in
  let npre = Array.length pre_s in
  let nflush = Array.length flush_s in
  fun ctx fuel ->
    if fuel < plen then slow ctx fuel
    else begin
      let regs = ctx.M.regs in
      for k = 0 to npre - 1 do
        Array.unsafe_set scratch
          (Array.unsafe_get pre_s k)
          (Int32.to_int (Array.unsafe_get regs (Array.unsafe_get pre_r k)))
      done;
      go ctx 0;
      for k = 0 to nflush - 1 do
        Array.unsafe_set regs
          (Array.unsafe_get flush_r k)
          (Int32.of_int (Array.unsafe_get scratch (Array.unsafe_get flush_s k)))
      done;
      ctx.M.cycles <- ctx.M.cycles + total_cyc;
      ctx.M.insns <- ctx.M.insns + plen;
      ctx.M.pc <- end_pc;
      after ctx (fuel - plen)
    end

let rec step_at tbl idx =
  match tbl.t_steps.(idx) with
  | Some s -> s
  | None ->
    compile_run tbl idx;
    (match tbl.t_steps.(idx) with Some s -> s | None -> assert false)

(* continuation for a static branch target: resolved (and its block
   translated) on first execution, memoized after — the fuel check comes
   first, as the interpreter checks fuel before re-fetching *)
and cont_at tbl off : step =
  if off < 0 || off >= tbl.t_code.Code.byte_size then escape
  else begin
    let memo = ref None in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        match !memo with
        | Some s -> s ctx fuel
        | None ->
          let s = step_at tbl (Code.index_at tbl.t_code off) in
          memo := Some s;
          s ctx fuel
      end
  end

(* translate the straight-line run starting at [idx]: forward to the
   first terminator or already-translated instruction, then backwards so
   each closure references its successor directly *)
and compile_run tbl idx =
  let code = tbl.t_code in
  let insns = code.Code.insns in
  let n = Array.length insns in
  let rec extent j =
    if j >= n || tbl.t_steps.(j) <> None then j - 1
    else if is_terminator insns.(j) then j
    else extent (j + 1)
  in
  let last = extent idx in
  let after =
    if last + 1 >= n then escape
    else
      match tbl.t_steps.(last + 1) with
      | Some s -> s
      | None -> cont_at tbl code.Code.offsets.(last + 1)
  in
  let st = tbl.t_stats in
  st.st_blocks <- st.st_blocks + 1;
  st.st_insns <- st.st_insns + (last - idx + 1);
  let next = ref after in
  for j = last downto idx do
    let s =
      if j < last && fusable insns.(j) insns.(j + 1) then begin
        st.st_fused <- st.st_fused + 1;
        tbl.t_fused.(j) <- true;
        compile_fused tbl j
      end
      else compile_step tbl j ~next:!next
    in
    tbl.t_steps.(j) <- Some s;
    next := s
  done;
  (* a long-enough micro-translatable prefix earns a batching superblock
     in the head slot; branch targets landing mid-run still hit their
     per-instruction steps, and the per-instruction head survives as the
     low-fuel path *)
  let plen =
    let rec scan m =
      if idx + m > last then m
      else match uop_of code (idx + m) with Some _ -> scan (m + 1) | None -> m
    in
    scan 0
  in
  if plen >= 3 then begin
    let slow =
      match tbl.t_steps.(idx) with Some s -> s | None -> assert false
    in
    let after_b =
      if idx + plen <= last then
        match tbl.t_steps.(idx + plen) with Some s -> s | None -> assert false
      else after
    in
    tbl.t_steps.(idx) <- Some (micro_wrap tbl idx plen ~slow ~after:after_b)
  end

(* one instruction, continuation [next]; mirrors the interpreter arm for
   arm, with the interpreter's right-to-left argument evaluation made
   explicit.  On entry the PC is at this instruction (so a trap leaves
   it there); the PC advances after the operation, before [next]. *)
and compile_step tbl j ~next : step =
  let code = tbl.t_code in
  let mem = tbl.t_mem in
  let base = tbl.t_base in
  let pc0 = base + code.Code.offsets.(j) in
  let next_pc = pc0 + code.Code.insn_sizes.(j) in
  let cyc = code.Code.insn_cycles.(j) in
  match code.Code.insns.(j) with
  (* register-to-register and immediate-to-register moves are frequent
     enough as one-instruction blocks (branch interstices) to deserve
     closures with no inner operand calls *)
  | Insn.Mov (Operand.Imm v, Operand.Reg rd)
    when reg_in_range code rd && not (reg_is_g0 code rd) ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        Array.unsafe_set ctx.M.regs rd v;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Mov (Operand.Reg rs, Operand.Reg rd)
    when reg_in_range code rs && not (reg_is_g0 code rs)
         && reg_in_range code rd && not (reg_is_g0 code rd) ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        Array.unsafe_set ctx.M.regs rd (Array.unsafe_get ctx.M.regs rs);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Mov (a, b) ->
    let ga = get_c code mem a and sb = set_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let v = ga ctx in
        sb ctx v;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Bin3 (op, a, b, c) ->
    let ga = get_c code mem a and gb = get_c code mem b and sc = set_c code mem c in
    let f = binop_fn op in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let vb = gb ctx in
        let va = ga ctx in
        sc ctx (f va vb);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Bin2 (op, a, b) ->
    let ga = get_c code mem a and gb = get_c code mem b and sb = set_c code mem b in
    let f = binop_fn op in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let va = ga ctx in
        let vb = gb ctx in
        let v = f vb va in
        sb ctx v;
        ctx.M.cc <- cmp32 v 0l;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Fbin3 (op, a, b, c) ->
    let ga = get_c code mem a and gb = get_c code mem b and sc = set_c code mem c in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let vb = gb ctx in
        let va = ga ctx in
        sc ctx (M.float_binop ctx.M.arch.Arch.float_format op va vb);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Fbin2 (op, a, b) ->
    let ga = get_c code mem a and gb = get_c code mem b and sb = set_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let va = ga ctx in
        let vb = gb ctx in
        sb ctx (M.float_binop ctx.M.arch.Arch.float_format op vb va);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Neg (a, b) ->
    let ga = get_c code mem a and sb = set_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let va = ga ctx in
        sb ctx (Int32.neg va);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Fneg (a, b) ->
    let ga = get_c code mem a and sb = set_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let fmt = ctx.M.arch.Arch.float_format in
        let va = ga ctx in
        let zero = Float_format.encode fmt 0.0 in
        sb ctx (M.float_binop fmt Insn.Sub zero va);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Cvt_if (a, b) ->
    let ga = get_c code mem a and sb = set_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let va = ga ctx in
        sb ctx
          (Float_format.encode ctx.M.arch.Arch.float_format (Int32.to_float va));
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Cvt_fi (a, b) ->
    let ga = get_c code mem a and sb = set_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let va = ga ctx in
        let f =
          try Float_format.decode ctx.M.arch.Arch.float_format va
          with Float_format.Reserved_operand m ->
            raise (M.Trapped (Suspend.Float_reserved m))
        in
        sb ctx (Int32.of_float f);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Cmp (a, b) ->
    let ga = get_c code mem a and gb = get_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let vb = gb ctx in
        let va = ga ctx in
        ctx.M.cc <- cmp32 va vb;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Fcmp (a, b) ->
    let ga = get_c code mem a and gb = get_c code mem b in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let fmt = ctx.M.arch.Arch.float_format in
        let decode v =
          try Float_format.decode fmt v
          with Float_format.Reserved_operand m ->
            raise (M.Trapped (Suspend.Float_reserved m))
        in
        let vb = gb ctx in
        let yb = decode vb in
        let va = ga ctx in
        let ya = decode va in
        ctx.M.cc <- Float.compare ya yb;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Bcc (c, target) ->
    let taken = cont_at tbl target in
    let tpc = base + target in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        if M.eval_cc c ctx.M.cc then begin
          ctx.M.pc <- tpc;
          taken ctx (fuel - 1)
        end
        else begin
          ctx.M.pc <- next_pc;
          next ctx (fuel - 1)
        end
      end
  | Insn.Br target ->
    let taken = cont_at tbl target in
    let tpc = base + target in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        ctx.M.pc <- tpc;
        taken ctx (fuel - 1)
      end
  | Insn.Jmp_abs target ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        if target = 0 then raise (M.Trapped (Suspend.Bad_pc 0));
        ctx.M.pc <- target;
        S_jump (fuel - 1)
      end
  | Insn.Jsr_ind r ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let target = Int32.to_int (M.reg ctx r) in
        if target = 0 then raise (M.Trapped (Suspend.Bad_pc 0));
        (match ctx.M.arch.Arch.family with
        | Arch.Vax | Arch.M68k -> M.push ctx mem (Int32.of_int next_pc)
        | Arch.Sparc -> M.set_reg ctx 15 (Int32.of_int next_pc));
        ctx.M.pc <- target;
        S_jump (fuel - 1)
      end
  | Insn.Push a ->
    let ga = get_c code mem a in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let va = ga ctx in
        M.push ctx mem va;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Vax_entry size ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.push ctx mem 0l;
        M.push ctx mem (Int32.of_int (M.fp ctx));
        M.set_fp ctx (M.sp ctx);
        M.set_sp ctx (M.sp ctx - size);
        M.check_stack ctx;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Vax_ret ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.set_sp ctx (M.fp ctx);
        M.set_fp ctx (Int32.to_int (M.pop ctx mem));
        let _mask = M.pop ctx mem in
        let target = Int32.to_int (M.pop ctx mem) in
        if target = 0 then S_bottom
        else begin
          ctx.M.pc <- target;
          S_jump (fuel - 1)
        end
      end
  | Insn.Link size ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.push ctx mem (Int32.of_int (M.fp ctx));
        M.set_fp ctx (M.sp ctx);
        M.set_sp ctx (M.sp ctx - size);
        M.check_stack ctx;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Unlk ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.set_sp ctx (M.fp ctx);
        M.set_fp ctx (Int32.to_int (M.pop ctx mem));
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Rts ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let target = Int32.to_int (M.pop ctx mem) in
        if target = 0 then S_bottom
        else begin
          ctx.M.pc <- target;
          S_jump (fuel - 1)
        end
      end
  | Insn.Save size ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.sparc_save ctx mem size;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Restore ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.sparc_restore ctx mem;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Retl ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let target = Int32.to_int (M.reg ctx 15) in
        if target = 0 then S_bottom
        else begin
          ctx.M.pc <- target;
          S_jump (fuel - 1)
        end
      end
  | Insn.Sethi (i, r) ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        M.set_reg ctx r (Int32.shift_left i 10);
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Syscall n ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        S_syscall n
      end
  | Insn.Poll _ ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        if ctx.M.skip_poll then begin
          ctx.M.skip_poll <- false;
          ctx.M.pc <- next_pc;
          next ctx (fuel - 1)
        end
        else if ctx.M.poll_requested then S_poll
        else begin
          ctx.M.pc <- next_pc;
          next ctx (fuel - 1)
        end
      end
  | Insn.Remque (rs, rd) ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        let sent = M.addr_of (M.reg ctx rs) in
        let first = Int32.to_int (M.load mem sent) in
        if first = sent then M.set_reg ctx rd 0l
        else begin
          let nxt = M.load mem first in
          M.store mem sent nxt;
          M.store mem (Int32.to_int nxt + 4) (Int32.of_int sent);
          M.set_reg ctx rd (Int32.of_int first)
        end;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Nop ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        ctx.M.pc <- next_pc;
        next ctx (fuel - 1)
      end
  | Insn.Halt ->
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc;
        ctx.M.insns <- ctx.M.insns + 1;
        S_halt
      end

(* the fused superinstructions.  Fidelity note: when fuel runs out
   between the two halves, the first half has executed and the PC rests
   on the second instruction — exactly the state the interpreter leaves.
   Landing directly on the second instruction (a branch target) takes
   that instruction's own unfused step; the fused closure occupies only
   the first instruction's slot. *)
and compile_fused tbl j : step =
  let code = tbl.t_code in
  let mem = tbl.t_mem in
  let base = tbl.t_base in
  let pc1 = base + code.Code.offsets.(j + 1) in
  let next_pc1 = pc1 + code.Code.insn_sizes.(j + 1) in
  let cyc0 = code.Code.insn_cycles.(j) in
  let cyc1 = code.Code.insn_cycles.(j + 1) in
  match (code.Code.insns.(j), code.Code.insns.(j + 1)) with
  | Insn.Cmp (a, b), Insn.Bcc (c, target) ->
    let taken = cont_at tbl target in
    let fall = cont_at tbl (code.Code.offsets.(j + 1) + code.Code.insn_sizes.(j + 1)) in
    let tpc = base + target in
    (* the compare sources are almost always registers or immediates;
       resolving them here turns the hottest superinstruction into one
       closure with no inner calls (the int compare on [Int32.to_int]
       values is [cmp32] exactly) *)
    let src op =
      match op with
      | Operand.Reg r when reg_is_g0 code r -> Some (`I 0)
      | Operand.Reg r when reg_in_range code r -> Some (`R r)
      | Operand.Imm i -> Some (`I (Int32.to_int i))
      | _ -> None
    in
    (match (src a, src b) with
    | Some sa, Some sb ->
      fun ctx fuel ->
        if fuel <= 0 then S_fuel
        else begin
          ctx.M.cycles <- ctx.M.cycles + cyc0;
          ctx.M.insns <- ctx.M.insns + 1;
          let regs = ctx.M.regs in
          let ia =
            match sa with
            | `R r -> Int32.to_int (Array.unsafe_get regs r)
            | `I i -> i
          and ib =
            match sb with
            | `R r -> Int32.to_int (Array.unsafe_get regs r)
            | `I i -> i
          in
          ctx.M.cc <- (if ia < ib then -1 else if ia > ib then 1 else 0);
          ctx.M.pc <- pc1;
          if fuel = 1 then S_fuel
          else begin
            ctx.M.cycles <- ctx.M.cycles + cyc1;
            ctx.M.insns <- ctx.M.insns + 1;
            if M.eval_cc c ctx.M.cc then begin
              ctx.M.pc <- tpc;
              taken ctx (fuel - 2)
            end
            else begin
              ctx.M.pc <- next_pc1;
              fall ctx (fuel - 2)
            end
          end
        end
    | _ ->
      let ga = get_c code mem a and gb = get_c code mem b in
      fun ctx fuel ->
        if fuel <= 0 then S_fuel
        else begin
          ctx.M.cycles <- ctx.M.cycles + cyc0;
          ctx.M.insns <- ctx.M.insns + 1;
          let vb = gb ctx in
          let va = ga ctx in
          ctx.M.cc <- cmp32 va vb;
          ctx.M.pc <- pc1;
          if fuel = 1 then S_fuel
          else begin
            ctx.M.cycles <- ctx.M.cycles + cyc1;
            ctx.M.insns <- ctx.M.insns + 1;
            if M.eval_cc c ctx.M.cc then begin
              ctx.M.pc <- tpc;
              taken ctx (fuel - 2)
            end
            else begin
              ctx.M.pc <- next_pc1;
              fall ctx (fuel - 2)
            end
          end
        end)
  | Insn.Poll _, Insn.Br target ->
    let taken = cont_at tbl target in
    let tpc = base + target in
    let through ctx fuel =
      ctx.M.pc <- pc1;
      if fuel = 1 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc1;
        ctx.M.insns <- ctx.M.insns + 1;
        ctx.M.pc <- tpc;
        taken ctx (fuel - 2)
      end
    in
    fun ctx fuel ->
      if fuel <= 0 then S_fuel
      else begin
        ctx.M.cycles <- ctx.M.cycles + cyc0;
        ctx.M.insns <- ctx.M.insns + 1;
        if ctx.M.skip_poll then begin
          ctx.M.skip_poll <- false;
          through ctx fuel
        end
        else if ctx.M.poll_requested then S_poll
        else through ctx fuel
      end
  | _ -> assert false

(* table lookup keyed by code OID; a table is valid only for the memory
   and load address it was translated against (a node restart brings a
   fresh memory, voiding every table through the physical-equality
   check) *)
let table_for cache ~mem (img : Text.image) =
  let code = img.Text.code in
  let base = img.Text.base in
  let inst = code.Code.code_inst in
  let rec find = function
    | [] -> None
    | ((oid, i), tbl) :: rest ->
      if
        Int32.equal oid code.Code.code_oid && i = inst
        && tbl.t_mem == mem && tbl.t_base = base && tbl.t_code == code
      then Some tbl
      else find rest
  in
  match find cache.tables with
  | Some tbl -> tbl
  | None ->
    let n = Array.length code.Code.insns in
    let tbl =
      {
        t_code = code;
        t_base = base;
        t_mem = mem;
        t_steps = Array.make n None;
        t_fused = Array.make n false;
        t_stats = cache.stats;
      }
    in
    cache.tables <-
      ((code.Code.code_oid, inst), tbl)
      :: List.filter
           (fun ((oid, i), _) ->
             not (Int32.equal oid code.Code.code_oid && i = inst))
           cache.tables;
    tbl

(* the drive loop replaces the interpreter's fetch: resolve the PC to a
   translated step (one-image memo, as the interpreter keeps) and let
   the closure chain run until it hands back a stop.  [S_jump] is the
   only re-entry: a dynamic transfer whose target needs the text map. *)
let run cache ctx ~mem ~text ~fuel =
  cache.stats.st_slices <- cache.stats.st_slices + 1;
  let img_memo = ref None in
  let image_for pc =
    match !img_memo with
    | Some img
      when pc >= img.Text.base && pc < img.Text.base + img.Text.code.Code.byte_size
      -> img
    | Some _ | None -> (
      match Text.find text pc with
      | Some img ->
        img_memo := Some img;
        img
      | None -> raise (M.Trapped (Suspend.Bad_pc pc)))
  in
  let rec drive fuel =
    if fuel <= 0 then Suspend.Fuel
    else begin
      let img = image_for ctx.M.pc in
      let tbl = table_for cache ~mem img in
      let idx = Code.index_at img.Text.code (ctx.M.pc - img.Text.base) in
      match (step_at tbl idx) ctx fuel with
      | S_fuel -> Suspend.Fuel
      | S_poll -> Suspend.Poll
      | S_syscall n -> Suspend.Syscall n
      | S_bottom -> Suspend.Bottom_return
      | S_halt -> Suspend.Halt
      | S_jump fuel' -> drive fuel'
    end
  in
  try drive fuel with
  | M.Trapped t -> Suspend.Trap t
  (* micro-ops go to [Memory] raw; the interpreter wraps at the access
     site, we wrap here — same [Suspend.Trap] either way *)
  | Memory.Fault x -> Suspend.Trap (Suspend.Mem_fault x)

(* --- static block partition (for [emdis --blocks] and the tests): the
   leaders are method entries, branch targets, and terminator
   successors; fusion heads are the pairs the translator would fuse *)

type block = {
  b_first : int;  (* instruction index of the leader *)
  b_last : int;  (* inclusive *)
  b_fused : int list;  (* indices heading a fused superinstruction *)
}

let describe_blocks (code : Code.t) =
  let insns = code.Code.insns in
  let n = Array.length insns in
  if n = 0 then []
  else begin
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iter
      (fun m ->
        leader.(Code.index_at code m.Code.entry_offset) <- true)
      code.Code.methods;
    Array.iteri
      (fun i insn ->
        (match insn with
        | Insn.Bcc (_, t) | Insn.Br t ->
          (* branch targets inside this image start a block *)
          (match Code.index_at code t with
          | idx -> leader.(idx) <- true
          | exception Invalid_argument _ -> ())
        | _ -> ());
        if is_terminator insn && i + 1 < n then leader.(i + 1) <- true)
      insns;
    let blocks = ref [] in
    let start = ref 0 in
    for i = 0 to n - 1 do
      if i + 1 >= n || leader.(i + 1) || is_terminator insns.(i) then begin
        let first = !start in
        let fused = ref [] in
        for j = i - 1 downto first do
          if fusable insns.(j) insns.(j + 1) then fused := j :: !fused
        done;
        blocks := { b_first = first; b_last = i; b_fused = !fused } :: !blocks;
        start := i + 1
      end
    done;
    List.rev !blocks
  end
