type method_info = {
  method_name : string;
  entry_offset : int;
  method_index : int;
}

type t = {
  code_oid : int32;
  code_inst : int;  (* instance tag: optimization level of this body *)
  class_name : string;
  arch : Arch.t;
  insns : Insn.t array;
  offsets : int array;
  byte_size : int;
  methods : method_info array;
  index_dense : int array;  (* byte offset -> instruction index; -1 off-boundary *)
  insn_sizes : int array;  (* per instruction, bytes, for this arch *)
  insn_cycles : int array;  (* per instruction, cycles, for this arch *)
}

let compute_offsets family insns =
  let n = Array.length insns in
  let offsets = Array.make n 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !pos;
    pos := !pos + Insn.size_bytes family insns.(i)
  done;
  (offsets, !pos)

let make ?(inst = 0) ~arch ~code_oid ~class_name ~methods insns =
  let offsets, byte_size = compute_offsets arch.Arch.family insns in
  (* the instruction-fetch tables: the interpreter decodes once per
     executed instruction, so boundary lookup, size, and cycle cost are
     all precomputed here rather than recomputed per fetch *)
  let index_dense = Array.make (byte_size + 1) (-1) in
  Array.iteri (fun i off -> index_dense.(off) <- i) offsets;
  let family = arch.Arch.family in
  let insn_sizes = Array.map (Insn.size_bytes family) insns in
  let insn_cycles = Array.map (Insn.cycles family) insns in
  let methods =
    Array.mapi
      (fun method_index (method_name, entry_index) ->
        { method_name; entry_offset = offsets.(entry_index); method_index })
      methods
  in
  {
    code_oid; code_inst = inst; class_name; arch; insns; offsets; byte_size;
    methods; index_dense; insn_sizes; insn_cycles;
  }

let index_at code off =
  let i = if off >= 0 && off < Array.length code.index_dense then code.index_dense.(off) else -1 in
  if i >= 0 then i
  else
    invalid_arg
      (Printf.sprintf "Code.index_at: %#x is not an instruction boundary in %s/%s" off
         code.class_name code.arch.Arch.id)

let method_by_name code name =
  Array.find_opt (fun m -> String.equal m.method_name name) code.methods

let pp ppf code =
  Format.fprintf ppf "code %s (oid %ld, %s, %d bytes)@." code.class_name code.code_oid
    code.arch.Arch.id code.byte_size;
  Array.iteri
    (fun i insn ->
      let off = code.offsets.(i) in
      Array.iter
        (fun m ->
          if m.entry_offset = off then Format.fprintf ppf "%s:@." m.method_name)
        code.methods;
      Format.fprintf ppf "  %04x: %a@." off (Insn.pp code.arch.Arch.family) insn)
    code.insns
