(** Compiled code objects.

    A code object is the per-architecture native code for one program
    class.  In Emerald, code objects are immutable objects named by OIDs
    and moved by duplication (section 3.2); semantically equivalent code
    objects compiled for different architectures share the same OID
    (section 3.4), which is what lets bus stops name program points across
    machines.  Program-counter values are byte offsets into the encoded
    instruction stream. *)

type method_info = {
  method_name : string;
  entry_offset : int;  (** byte offset of the method prologue *)
  method_index : int;  (** slot in the dispatch table; same on every arch *)
}

type t = private {
  code_oid : int32;
  code_inst : int;
      (** instance tag distinguishing differently-optimized bodies of the
          same code OID (the optimization level); threaded-dispatch step
          tables are keyed by [(code_oid, code_inst)] *)
  class_name : string;
  arch : Arch.t;
  insns : Insn.t array;
  offsets : int array;  (** byte offset of each instruction *)
  byte_size : int;
  methods : method_info array;  (** indexed by [method_index] *)
  index_dense : int array;
      (** byte offset -> instruction index; -1 between boundaries.  The
          interpreter's fetch path reads this (and the two arrays below)
          directly — precomputed at {!make} so decode costs no per-fetch
          table lookups or size/cycle recomputation. *)
  insn_sizes : int array;  (** per-instruction encoded size, bytes *)
  insn_cycles : int array;  (** per-instruction cost, cycles, this arch *)
}

val make :
  ?inst:int ->
  arch:Arch.t ->
  code_oid:int32 ->
  class_name:string ->
  methods:(string * int) array ->
  Insn.t array ->
  t
(** [make ~arch ~code_oid ~class_name ~methods insns] builds a code object;
    [methods] gives each method name and the {e instruction index} of its
    entry, converted internally to byte offsets.  [inst] (default 0) tags
    the optimization instance this body belongs to. *)

val compute_offsets : Arch.family -> Insn.t array -> int array * int
(** Byte offset of each instruction and the total byte size — also used by
    the code generators to resolve branch targets. *)

val index_at : t -> int -> int
(** [index_at code off] is the instruction index at byte offset [off].
    @raise Invalid_argument if [off] is not an instruction boundary. *)

val method_by_name : t -> string -> method_info option
val pp : Format.formatter -> t -> unit
