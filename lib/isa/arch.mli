(** Descriptors of the four workstation architectures of the paper.

    An architecture bundles the machine-dependent properties that make
    heterogeneous thread mobility hard: instruction-set family, byte order,
    float format, register file, and performance.  The performance figures
    (clock and a rough MIPS rating) drive the virtual-time cost model used
    by the Table 1 reproduction; they correspond to the machines named in
    section 3.6 of the paper. *)

type family = Vax | M68k | Sparc

type t = {
  id : string;  (** short stable identifier, e.g. ["sun3"] *)
  name : string;  (** display name as in the paper, e.g. ["Sun-3"] *)
  family : family;
  endian : Endian.t;
  float_format : Float_format.t;
  clock_mhz : float;
  mips : float;
      (** effective throughput for kernel/protocol software, fitted to the
          paper's original-system Table 1 column; native-code speed is
          modelled separately, by instruction cycle counts at [clock_mhz] *)
  has_atomic_unlink : bool;
      (** the VAX can unlink an element from a doubly linked list atomically
          (REMQUE); the other processors need a system call (section 3.3) *)
}

val vax : t
(** VAXstation 2000, Ultrix; little-endian, VAX F floats. *)

val sun3 : t
(** Sun-3/100-class MC680x0 workstation, SunOS. *)

val hp9000_433 : t
(** "HP9000/300 1" of the paper: HP Apollo 9000/400 model 433s,
    33 MHz MC68040. *)

val hp9000_385 : t
(** "HP9000/300 2" of the paper: HP 9000/300 model 385, 25 MHz MC68030. *)

val sparc : t
(** SPARCstation SLC, 20 MHz. *)

val all : t list
(** All five architecture descriptors, in the order above. *)

val by_id : string -> t
(** Look up an architecture by [id]. @raise Not_found if unknown. *)

val family_name : family -> string
val equal : t -> t -> bool
val equal_family : family -> family -> bool
val pp : Format.formatter -> t -> unit

val cycle_time_ns : t -> float
(** Nanoseconds per clock cycle. *)

val fingerprint : t -> int
(** The memory-layout fingerprint used by the negotiated common-layout
    migration mode: one word packing byte order, float format, word
    size, and the family's activation-record packing.  Two machines
    with equal fingerprints can exchange thread state by verbatim copy
    (the blit codec tier); computed once per descriptor and interned,
    like conversion-plan pairs.  Always nonzero. *)

val same_layout : t -> t -> bool
(** [fingerprint a = fingerprint b]. *)

val fingerprint_computes : unit -> int
(** Fingerprints computed from scratch since program start; at most one
    per builtin descriptor unless non-builtin descriptors are used. *)

val fingerprint_hits : unit -> int
(** Fingerprint lookups served by the intern memo. *)
