(** Byte-addressable data memory of one node.

    All multi-byte accesses honour the node architecture's byte order, so
    the in-memory representation of an object on a VAX really is
    byte-swapped relative to a SPARC, and the marshalling layer has to
    convert.  Address 0 is the nil reference; accesses below
    {!low_bound} fault. *)

type t

exception Fault of int
(** Raised on an access outside the mapped range (the address is carried). *)

val low_bound : int
(** Lowest mapped address (a small red zone catches nil dereferences). *)

val create : endian:Endian.t -> size:int -> t
val endian : t -> Endian.t
val size : t -> int
val grow_to : t -> int -> unit

(** Install the incremental collector's write barrier: [f old_bits
    new_bits] is called on every 32-bit store (checked or unsafe) with
    the overwritten and the stored word as unsigned bits, before the
    store lands.  At most one barrier is installed at a time; installing
    replaces.  With no barrier installed a store costs one extra
    branch. *)
val set_store_barrier : t -> (int -> int -> unit) -> unit

(** Remove the installed barrier, restoring plain stores. *)
val clear_store_barrier : t -> unit
val load32 : t -> int -> int32
val store32 : t -> int -> int32 -> unit

(** [load32] with the word returned as bits in [0, 0xFFFF_FFFF] — an
    untagged [int], no allocation.  Same bounds check, same byte order. *)
val load32_bits : t -> int -> int

(** [store32] from the low 32 bits of an [int] (signed or unsigned
    representation both work).  Same bounds check, same byte order. *)
val store32_bits : t -> int -> int -> unit

(** Unchecked variants for callers that perform the [low_bound]/[size]
    test themselves; out-of-range addresses are undefined behaviour. *)
val unsafe_load32_bits : t -> int -> int

val unsafe_store32_bits : t -> int -> int -> unit
val load16 : t -> int -> int
val store16 : t -> int -> int -> unit
val load8 : t -> int -> int
val store8 : t -> int -> int -> unit
val blit_string : t -> int -> string -> unit
val read_string : t -> int -> int -> string
val blit_within : t -> src:int -> dst:int -> len:int -> unit
(** Overlapping-safe copy, used by the activation-record relocation pass. *)

val zero_fill : t -> int -> int -> unit
