type family = Vax | M68k | Sparc

type t = {
  id : string;
  name : string;
  family : family;
  endian : Endian.t;
  float_format : Float_format.t;
  clock_mhz : float;
  mips : float;
  has_atomic_unlink : bool;
}

let vax =
  {
    id = "vax";
    name = "VAX";
    family = Vax;
    endian = Endian.Little;
    float_format = Float_format.Vax_f;
    clock_mhz = 5.0;
    mips = 2.0;
    has_atomic_unlink = true;
  }

let sun3 =
  {
    id = "sun3";
    name = "Sun-3";
    family = M68k;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 16.0;
    mips = 2.7;
    has_atomic_unlink = false;
  }

let hp9000_433 =
  {
    id = "hp433";
    name = "HP9000/300-1";
    family = M68k;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 33.0;
    mips = 26.0;
    has_atomic_unlink = false;
  }

let hp9000_385 =
  {
    id = "hp385";
    name = "HP9000/300-2";
    family = M68k;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 25.0;
    mips = 9.0;
    has_atomic_unlink = false;
  }

let sparc =
  {
    id = "sparc";
    name = "SPARC";
    family = Sparc;
    endian = Endian.Big;
    float_format = Float_format.Ieee_single;
    clock_mhz = 20.0;
    mips = 6.0;
    has_atomic_unlink = false;
  }

let all = [ vax; sun3; hp9000_433; hp9000_385; sparc ]

let by_id id =
  match List.find_opt (fun a -> String.equal a.id id) all with
  | Some a -> a
  | None -> raise Not_found

let family_name = function
  | Vax -> "VAX"
  | M68k -> "MC680x0"
  | Sparc -> "SPARC"

let equal a b = String.equal a.id b.id

let equal_family a b =
  match a, b with
  | Vax, Vax | M68k, M68k | Sparc, Sparc -> true
  | (Vax | M68k | Sparc), _ -> false

let pp ppf a = Format.fprintf ppf "%s(%s)" a.name (family_name a.family)
let cycle_time_ns a = 1000.0 /. a.clock_mhz

(* ------------------------------------------------------------------ *)
(* Layout fingerprints for the negotiated common-layout migration mode *)
(* ------------------------------------------------------------------ *)

(* One word summarizing everything that decides whether two machines
   can exchange thread state by verbatim copy: byte order, float
   format, word size, and the family (which fixes activation-record
   linkage/field packing — a SPARC register window is not an M68k
   stack frame even though both are big-endian IEEE machines). *)
let word_size_bytes = 4

let compute_fingerprint a =
  let fam = match a.family with Vax -> 1 | M68k -> 2 | Sparc -> 3 in
  let en = match a.endian with Endian.Little -> 0 | Endian.Big -> 1 in
  let ff =
    match a.float_format with
    | Float_format.Vax_f -> 0
    | Float_format.Ieee_single -> 1
  in
  (* a tag bit keeps every fingerprint nonzero so 0 can mean "not yet
     interned" in the memo below *)
  0x4C00_0000 lor (fam lsl 12) lor (en lsl 8) lor (ff lsl 4) lor word_size_bytes

(* interned once per descriptor, like conversion-plan pairs: the memo
   is indexed by the (small, closed) set of architecture ids, and the
   counters let emrun --stats assert migrations hit the memo instead
   of recomputing per move.  Writes are idempotent (the fingerprint is
   a pure function of the descriptor) so the slots need no lock; the
   counters are atomic because shard domains negotiate concurrently. *)
let fp_ord a =
  match a.id with
  | "vax" -> 0
  | "sun3" -> 1
  | "hp433" -> 2
  | "hp385" -> 3
  | "sparc" -> 4
  | _ -> -1

let fp_slots = Array.init 5 (fun _ -> Atomic.make 0)
let fp_computes = Atomic.make 0
let fp_hits = Atomic.make 0

let fingerprint a =
  let i = fp_ord a in
  if i < 0 then begin
    (* descriptors outside the builtin set (tests) are not interned *)
    Atomic.incr fp_computes;
    compute_fingerprint a
  end
  else
    let v = Atomic.get fp_slots.(i) in
    if v <> 0 then begin
      Atomic.incr fp_hits;
      v
    end
    else begin
      let v = compute_fingerprint a in
      Atomic.set fp_slots.(i) v;
      Atomic.incr fp_computes;
      v
    end

let same_layout a b = fingerprint a = fingerprint b
let fingerprint_computes () = Atomic.get fp_computes
let fingerprint_hits () = Atomic.get fp_hits
