type error = {
  insn_index : int;
  message : string;
}

let is_mem = function
  | Operand.Mem _ -> true
  | Operand.Reg _ | Operand.Imm _ -> false

let is_reg = function
  | Operand.Reg _ -> true
  | Operand.Mem _ | Operand.Imm _ -> false

let sparc_imm_ok i = Int32.compare i (-4096l) >= 0 && Int32.compare i 4096l < 0

let sparc_source_ok = function
  | Operand.Reg _ -> true
  | Operand.Imm i -> sparc_imm_ok i
  | Operand.Mem _ -> false

let sparc_mem_ok = function
  | Operand.Mem (Operand.Disp (_, d)) -> d >= -4096 && d < 4096
  | Operand.Mem (Operand.Abs _ | Operand.Autoinc _ | Operand.Autodec _) -> false
  | Operand.Reg _ | Operand.Imm _ -> false

let check_operand_mode family op =
  match family, op with
  | (Arch.Vax | Arch.M68k), _ -> None
  | Arch.Sparc, (Operand.Mem _ as m) ->
    if sparc_mem_ok m then None else Some "SPARC allows only short-displacement memory operands"
  | Arch.Sparc, Operand.Imm i ->
    if sparc_imm_ok i then None else Some "SPARC immediate exceeds 13 bits (use Sethi)"
  | Arch.Sparc, Operand.Reg _ -> None

let check_insn family insn =
  let bad what = Some (Printf.sprintf "%s is not a %s instruction" what (Arch.family_name family)) in
  let operands =
    match insn with
    | Insn.Mov (a, b)
    | Insn.Bin2 (_, a, b)
    | Insn.Fbin2 (_, a, b)
    | Insn.Neg (a, b)
    | Insn.Fneg (a, b)
    | Insn.Cvt_if (a, b)
    | Insn.Cvt_fi (a, b)
    | Insn.Cmp (a, b)
    | Insn.Fcmp (a, b) -> [ a; b ]
    | Insn.Bin3 (_, a, b, c) | Insn.Fbin3 (_, a, b, c) -> [ a; b; c ]
    | Insn.Push a -> [ a ]
    | Insn.Bcc (_, _)
    | Insn.Br _
    | Insn.Jmp_abs _
    | Insn.Jsr_ind _
    | Insn.Vax_entry _ | Insn.Vax_ret
    | Insn.Link _ | Insn.Unlk | Insn.Rts
    | Insn.Save _ | Insn.Restore | Insn.Retl
    | Insn.Sethi (_, _)
    | Insn.Syscall _ | Insn.Poll _
    | Insn.Remque (_, _)
    | Insn.Nop | Insn.Halt -> []
  in
  let mode_error =
    List.fold_left
      (fun acc op ->
        match acc with
        | Some _ -> acc
        | None -> check_operand_mode family op)
      None operands
  in
  match mode_error with
  | Some _ as e -> e
  | None -> (
    match family, insn with
    (* family-specific instructions *)
    | Arch.Vax, (Insn.Vax_entry _ | Insn.Vax_ret | Insn.Remque (_, _) | Insn.Push _) -> None
    | _, (Insn.Vax_entry _ | Insn.Vax_ret) -> bad "VAX procedure entry/return"
    | _, Insn.Remque (_, _) -> bad "REMQUE (atomic queue unlink)"
    | _, Insn.Push _ -> bad "PUSHL"
    | Arch.M68k, (Insn.Link _ | Insn.Unlk | Insn.Rts) -> None
    | _, (Insn.Link _ | Insn.Unlk | Insn.Rts) -> bad "M68k LINK/UNLK/RTS"
    | Arch.Sparc, (Insn.Save _ | Insn.Restore | Insn.Retl | Insn.Sethi (_, _)) -> None
    | _, (Insn.Save _ | Insn.Restore | Insn.Retl) -> bad "SPARC register-window op"
    | _, Insn.Sethi (_, _) -> bad "SETHI"
    (* arithmetic forms *)
    | Arch.Vax, Insn.Bin3 (_, _, _, _) | Arch.Vax, Insn.Fbin3 (_, _, _, _) -> None
    | Arch.Vax, (Insn.Bin2 (_, _, _) | Insn.Fbin2 (_, _, _)) ->
      bad "two-address arithmetic (this backend uses three-operand VAX forms)"
    | Arch.M68k, (Insn.Bin2 (_, a, b) | Insn.Fbin2 (_, a, b)) ->
      if is_mem a && is_mem b then
        Some "M68k arithmetic allows at most one memory operand"
      else None
    | Arch.M68k, (Insn.Bin3 (_, _, _, _) | Insn.Fbin3 (_, _, _, _)) ->
      bad "three-operand arithmetic"
    | Arch.Sparc, Insn.Bin3 (_, a, b, c) | Arch.Sparc, Insn.Fbin3 (_, a, b, c) ->
      if sparc_source_ok a && sparc_source_ok b && is_reg c then None
      else Some "SPARC arithmetic operates on registers/short immediates only"
    | Arch.Sparc, (Insn.Bin2 (_, _, _) | Insn.Fbin2 (_, _, _)) ->
      bad "two-address arithmetic"
    (* moves *)
    | Arch.Sparc, Insn.Mov (a, b) -> (
      match a, b with
      | (Operand.Reg _ | Operand.Imm _), Operand.Reg _ ->
        if sparc_source_ok a then None else Some "SPARC mov immediate exceeds 13 bits"
      | Operand.Mem _, Operand.Reg _ -> if sparc_mem_ok a then None else Some "bad SPARC load"
      | Operand.Reg _, Operand.Mem _ -> if sparc_mem_ok b then None else Some "bad SPARC store"
      | _, _ -> Some "SPARC mov must be reg/imm-to-reg, load or store")
    | (Arch.Vax | Arch.M68k), Insn.Mov (_, _) -> None
    (* compares *)
    | Arch.Sparc, Insn.Cmp (a, b) ->
      if is_reg a && sparc_source_ok b then None
      else Some "SPARC compare is subcc reg, reg_or_imm"
    | Arch.Sparc, Insn.Fcmp (a, b) ->
      if is_reg a && is_reg b then None else Some "SPARC fcmp operates on registers"
    | _, (Insn.Cmp (_, _) | Insn.Fcmp (_, _)) -> None
    (* universal *)
    | _, (Insn.Neg (_, _) | Insn.Fneg (_, _) | Insn.Cvt_if (_, _) | Insn.Cvt_fi (_, _)) ->
      None
    | _, (Insn.Bcc (_, _) | Insn.Br _ | Insn.Jmp_abs _ | Insn.Jsr_ind _) -> None
    | _, (Insn.Syscall _ | Insn.Poll _ | Insn.Nop | Insn.Halt) -> None)

let check code =
  let family = code.Code.arch.Arch.family in
  let errors = ref [] in
  Array.iteri
    (fun i insn ->
      match check_insn family insn with
      | None -> ()
      | Some message -> errors := { insn_index = i; message } :: !errors)
    code.Code.insns;
  List.rev !errors

let pp_error ppf e = Format.fprintf ppf "insn %d: %s" e.insn_index e.message

let check_exn code =
  match check code with
  | [] -> ()
  | errors ->
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "invalid %s code for %s:@." code.Code.class_name
      code.Code.arch.Arch.id;
    List.iter (fun e -> Format.fprintf ppf "  %a@." pp_error e) errors;
    Format.pp_print_flush ppf ();
    invalid_arg (Buffer.contents buf)
