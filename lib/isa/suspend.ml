(* The one suspension type shared by the virtual CPU, the kernel
   scheduler and the machine-independent wire format.  See suspend.mli
   for the invariant table. *)

type trap =
  | Div_zero
  | Nil_deref
  | Mem_fault of int
  | Float_reserved of string
  | Stack_overflow
  | Bad_pc of int
  | Bad_insn of string

type 'v t =
  | Run
  | Poll
  | Syscall of int
  | Bottom_return
  | Halt
  | Trap of trap
  | Fuel
  | Deliver of 'v
  | Complete of 'v option
  | Complete_dequeue of int option

let resumable = function
  | Run | Deliver _ | Complete _ | Complete_dequeue _ -> true
  | Poll | Syscall _ | Bottom_return | Halt | Trap _ | Fuel -> false

let wire_encodable = resumable

let pp_trap ppf = function
  | Div_zero -> Format.pp_print_string ppf "division by zero"
  | Nil_deref -> Format.pp_print_string ppf "nil dereference"
  | Mem_fault a -> Format.fprintf ppf "memory fault at %#x" a
  | Float_reserved m -> Format.fprintf ppf "reserved float operand (%s)" m
  | Stack_overflow -> Format.pp_print_string ppf "stack overflow"
  | Bad_pc a -> Format.fprintf ppf "bad PC %#x" a
  | Bad_insn m -> Format.fprintf ppf "illegal instruction (%s)" m

let pp ?value ppf s =
  let pv ppf v =
    match value with
    | Some f -> f ppf v
    | None -> Format.pp_print_string ppf "<value>"
  in
  match s with
  | Run -> Format.pp_print_string ppf "run"
  | Poll -> Format.pp_print_string ppf "poll"
  | Syscall n -> Format.fprintf ppf "syscall %d" n
  | Bottom_return -> Format.pp_print_string ppf "segment-bottom return"
  | Halt -> Format.pp_print_string ppf "halt"
  | Trap t -> Format.fprintf ppf "trap: %a" pp_trap t
  | Fuel -> Format.pp_print_string ppf "out of fuel"
  | Deliver v -> Format.fprintf ppf "deliver %a" pv v
  | Complete None -> Format.pp_print_string ppf "complete syscall"
  | Complete (Some v) -> Format.fprintf ppf "complete syscall (%a)" pv v
  | Complete_dequeue None -> Format.pp_print_string ppf "complete dequeue (empty)"
  | Complete_dequeue (Some s) -> Format.fprintf ppf "complete dequeue (waiter %d)" s
