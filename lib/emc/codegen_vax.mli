(** VAX code generator.

    Little-endian CISC: three-operand arithmetic with general memory
    operands, PUSHL argument passing, a CALLS-style frame (saved FP, save
    mask word, return address above the frame pointer), variable-length
    instruction encodings — and REMQUE, the atomic queue unlink that gives
    the monitor-exit sequence its exit-only bus stop (section 3.3). *)

module Family : Codegen_common.FAMILY

val compile_class :
  ?optimize:bool ->
  arch:Isa.Arch.t ->
  code_oid:int32 ->
  Ir.class_ir ->
  Template.class_t ->
  Isa.Code.t * Busstop.table

val compile_class_at :
  ?level:Opt.level ->
  arch:Isa.Arch.t ->
  code_oid:int32 ->
  Ir.class_ir ->
  Template.class_t ->
  Isa.Code.t * Busstop.table * Opt.edit list
