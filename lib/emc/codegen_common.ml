module A = Isa.Arch
module R = Isa.Reg
module I = Isa.Insn
module O = Isa.Operand

module Emitter = struct
  type t = {
    family : A.family;
    mutable insns : I.t array;
    mutable count : int;
    mutable label_pos : int array;  (* label -> insn index, -1 if unplaced *)
    mutable n_labels : int;
    mutable fixups : (int * int) list;  (* insn index, label *)
  }

  let create family =
    { family; insns = Array.make 64 I.Nop; count = 0; label_pos = Array.make 16 (-1);
      n_labels = 0; fixups = [] }

  let family t = t.family

  let emit t insn =
    if t.count = Array.length t.insns then begin
      let bigger = Array.make (2 * t.count) I.Nop in
      Array.blit t.insns 0 bigger 0 t.count;
      t.insns <- bigger
    end;
    t.insns.(t.count) <- insn;
    t.count <- t.count + 1;
    t.count - 1

  let next_index t = t.count

  let fresh_label t =
    if t.n_labels = Array.length t.label_pos then begin
      let bigger = Array.make (2 * t.n_labels) (-1) in
      Array.blit t.label_pos 0 bigger 0 t.n_labels;
      t.label_pos <- bigger
    end;
    t.n_labels <- t.n_labels + 1;
    t.n_labels - 1

  let place t l = t.label_pos.(l) <- t.count

  let branch t cond l =
    let insn =
      match cond with
      | Some c -> I.Bcc (c, 0)
      | None -> I.Br 0
    in
    let idx = emit t insn in
    t.fixups <- (idx, l) :: t.fixups

  (* run one optimizer pass over the whole buffer, fixing labels and
     branch fixups; returns a position remap for the caller's own tables
     (bus stops, method entries) *)
  let optimize t ~protected_idx ~pass =
    let n = t.count in
    let insns = Array.sub t.insns 0 n in
    let protected = Array.make (max n 1) false in
    List.iter (fun i -> if i >= 0 && i < n then protected.(i) <- true) protected_idx;
    for l = 0 to t.n_labels - 1 do
      let p = t.label_pos.(l) in
      if p >= 0 && p < n then protected.(p) <- true
    done;
    let out, remap = pass ~protected insns in
    let new_count = Array.length out in
    let remap_pos p = if p >= n then new_count else remap.(p) in
    t.insns <- Array.append out (Array.make (max 16 (n - new_count)) I.Nop);
    t.count <- new_count;
    for l = 0 to t.n_labels - 1 do
      if t.label_pos.(l) >= 0 then t.label_pos.(l) <- remap_pos t.label_pos.(l)
    done;
    t.fixups <- List.map (fun (idx, l) -> (remap_pos idx, l)) t.fixups;
    remap_pos

  let finalize t =
    let insns = Array.sub t.insns 0 t.count in
    let offsets, byte_size = Isa.Code.compute_offsets t.family insns in
    let offset_of_index i = if i >= t.count then byte_size else offsets.(i) in
    List.iter
      (fun (idx, l) ->
        let pos = t.label_pos.(l) in
        if pos < 0 then invalid_arg "Emitter.finalize: branch to unplaced label";
        let target = offset_of_index pos in
        insns.(idx) <-
          (match insns.(idx) with
          | I.Bcc (c, _) -> I.Bcc (c, target)
          | I.Br _ -> I.Br target
          | _ -> assert false))
      t.fixups;
    insns
end

type loc =
  | Lreg of R.t
  | Limm of int32
  | Lslot of int

type mon_exit_info = {
  me_dequeue_idx : int;
  me_dequeue_exit_only : bool;
  me_dequeue_args : int;
  me_wake_idx : int;
  me_wake_args : int;
}

module type FAMILY = sig
  val family : A.family
  val frame_size : n_slots:int -> n_scratch:int -> int
  val slot_offset : n_slots:int -> int -> int
  val scratch_offset : n_slots:int -> n_scratch:int -> int -> int
  val fixed_sp_depth : frame_size:int -> int
  val arg_push_bytes : int -> int
  val retval_reg : R.t
  val prologue : Emitter.t -> frame_size:int -> param_offsets:int array -> unit
  val epilogue : Emitter.t -> result_offset:int option -> unit
  val load : Emitter.t -> dst:R.t -> src:loc -> unit
  val store : Emitter.t -> src:R.t -> off:int -> unit
  val store_loc : Emitter.t -> src:loc -> off:int -> scratch:(unit -> R.t) -> unit
  val load_mem : Emitter.t -> dst:R.t -> base:R.t -> disp:int -> unit
  val store_mem : Emitter.t -> src:R.t -> base:R.t -> disp:int -> unit

  val bin :
    Emitter.t ->
    I.binop ->
    ty:Ir.arith_ty ->
    a:loc ->
    b:loc ->
    dst:R.t ->
    scratch:(unit -> R.t) ->
    unit

  val neg : Emitter.t -> ty:Ir.arith_ty -> a:loc -> dst:R.t -> scratch:(unit -> R.t) -> unit
  val cvt_int_real : Emitter.t -> a:loc -> dst:R.t -> scratch:(unit -> R.t) -> unit
  val cmp : Emitter.t -> ty:Ir.arith_ty -> a:loc -> b:loc -> scratch:(unit -> R.t) -> unit

  val invoke :
    Emitter.t ->
    target:loc ->
    args:loc list ->
    method_index:int ->
    scratch:(unit -> R.t) ->
    int * int

  val syscall : Emitter.t -> nr:int -> args:loc list -> scratch:(unit -> R.t) -> int
  val mon_exit : Emitter.t -> self:loc -> scratch:(unit -> R.t) -> mon_exit_info
end

let n_scratch_slots = 16

module Make (F : FAMILY) = struct
  type temp_state = {
    mutable in_reg : R.t option;
    mutable spill : int option;  (* pressure-spill scratch slot *)
  }

  type stop_proto = {
    sp_id : int;
    sp_op : int;
    sp_pc_idx : int;
    sp_alt_idx : int option;
    sp_exit_only : bool;
    sp_elided : bool;
    sp_pushed : int;
    sp_kind : Ir.stop_kind;
  }

  type ctx = {
    em : Emitter.t;
    tmpl : Template.op_t;
    ir : Ir.op_ir;
    nmethods : int;
    n_slots : int;
    frame_size : int;
    temps : temp_state array;
    temp_of_reg : (R.t, int) Hashtbl.t;
    mutable protected : R.t list;
    mutable stamp : int;
    last_use : int array;
    mutable free_spills : int list;
    use_count : int array;  (* remaining uses per temp; dead temps free their registers *)
    labels : int array;
    stops : stop_proto list ref;
    level : Opt.level;
    copt : bool;  (* -O1: cache variable values in registers between stops *)
    edits : Opt.edit list ref;  (* per-instance optimizer provenance *)
    mutable block_has_call : bool;
        (* the current IR block recorded a system-call-bearing stop, so
           every pass over its back edge already crosses a capture point
           and -O2 may elide the loop poll *)
    var_cache : (int, R.t) Hashtbl.t;  (* var id -> register holding its value *)
    cache_of_reg : (R.t, int) Hashtbl.t;
  }

  let slot_off ctx s = F.slot_offset ~n_slots:ctx.n_slots s
  let scratch_off ctx s = F.scratch_offset ~n_slots:ctx.n_slots ~n_scratch:n_scratch_slots s
  let var_off ctx v = slot_off ctx (Template.var_slot ctx.tmpl v)
  let self_off ctx = var_off ctx 0
  let protect ctx r = ctx.protected <- r :: ctx.protected
  let is_protected ctx r = List.mem r ctx.protected

  let unbind ctx t =
    match ctx.temps.(t).in_reg with
    | Some r ->
      Hashtbl.remove ctx.temp_of_reg r;
      ctx.temps.(t).in_reg <- None
    | None -> ()

  let uncache_reg ctx r =
    match Hashtbl.find_opt ctx.cache_of_reg r with
    | Some v ->
      Hashtbl.remove ctx.cache_of_reg r;
      Hashtbl.remove ctx.var_cache v
    | None -> ()

  let cache_var ctx v r =
    if ctx.copt then begin
      (match Hashtbl.find_opt ctx.var_cache v with
      | Some old -> Hashtbl.remove ctx.cache_of_reg old
      | None -> ());
      uncache_reg ctx r;
      Hashtbl.replace ctx.var_cache v r;
      Hashtbl.replace ctx.cache_of_reg r v
    end

  let uncache_var ctx v =
    match Hashtbl.find_opt ctx.var_cache v with
    | Some r ->
      Hashtbl.remove ctx.var_cache v;
      Hashtbl.remove ctx.cache_of_reg r
    | None -> ()

  let free_all ctx =
    Array.iteri (fun t _ -> unbind ctx t) ctx.temps;
    Array.iter (fun st -> st.spill <- None) ctx.temps;
    Hashtbl.reset ctx.var_cache;
    Hashtbl.reset ctx.cache_of_reg;
    ctx.free_spills <- List.init n_scratch_slots Fun.id;
    ctx.protected <- []

  let bind ctx t r =
    ctx.temps.(t).in_reg <- Some r;
    Hashtbl.replace ctx.temp_of_reg r t;
    ctx.stamp <- ctx.stamp + 1;
    ctx.last_use.(t) <- ctx.stamp

  let touch ctx t =
    ctx.stamp <- ctx.stamp + 1;
    ctx.last_use.(t) <- ctx.stamp

  let alloc_reg ctx =
    let pool = R.scratch F.family in
    (* prefer registers that are neither bound to temps nor caching vars;
       then sacrifice a cache entry; stealing a temp binding comes last *)
    let free =
      match
        List.find_opt
          (fun r ->
            (not (Hashtbl.mem ctx.temp_of_reg r))
            && (not (Hashtbl.mem ctx.cache_of_reg r))
            && not (is_protected ctx r))
          pool
      with
      | Some r -> Some r
      | None ->
        List.find_opt
          (fun r -> (not (Hashtbl.mem ctx.temp_of_reg r)) && not (is_protected ctx r))
          pool
    in
    let r =
      match free with
      | Some r -> r
      | None ->
        (* steal the least recently used unprotected binding *)
        let victim =
          List.filter_map
            (fun r ->
              if is_protected ctx r then None
              else
                Option.map (fun t -> (r, t)) (Hashtbl.find_opt ctx.temp_of_reg r))
            pool
          |> List.sort (fun (_, t1) (_, t2) ->
                 compare ctx.last_use.(t1) ctx.last_use.(t2))
          |> function
          | v :: _ -> v
          | [] -> failwith "codegen: register pressure exceeds pool with all protected"
        in
        let r, t = victim in
        (match ctx.tmpl.Template.ot_temp_slots.(t) with
        | Some _ -> () (* slotted temps are stored through at definition *)
        | None -> (
          match ctx.temps.(t).spill with
          | Some _ -> ()
          | None -> (
            match ctx.free_spills with
            | [] -> failwith "codegen: out of scratch spill slots"
            | s :: rest ->
              ctx.free_spills <- rest;
              F.store ctx.em ~src:r ~off:(scratch_off ctx s);
              ctx.temps.(t).spill <- Some s)));
        unbind ctx t;
        r
    in
    uncache_reg ctx r;
    protect ctx r;
    r

  let home_loc ctx t =
    match ctx.tmpl.Template.ot_temp_slots.(t) with
    | Some s -> Lslot (slot_off ctx s)
    | None -> (
      match ctx.temps.(t).spill with
      | Some s -> Lslot (scratch_off ctx s)
      | None ->
        failwith
          (Printf.sprintf "codegen: temp %d of %s used without a value" t
             ctx.ir.Ir.oi_name))

  (* one IR use consumed: when a temp is dead, release its register and
     any pressure-spill slot (the register stays protected for the rest of
     the current instruction) *)
  let consume ctx t =
    ctx.use_count.(t) <- ctx.use_count.(t) - 1;
    if ctx.use_count.(t) <= 0 then begin
      unbind ctx t;
      match ctx.temps.(t).spill with
      | Some s ->
        ctx.temps.(t).spill <- None;
        ctx.free_spills <- s :: ctx.free_spills
      | None -> ()
    end

  let use_loc ctx t =
    let loc =
      match ctx.temps.(t).in_reg with
      | Some r ->
        touch ctx t;
        protect ctx r;
        Lreg r
      | None -> home_loc ctx t
    in
    consume ctx t;
    loc

  let use_reg ctx t =
    let r =
      match ctx.temps.(t).in_reg with
      | Some r ->
        touch ctx t;
        protect ctx r;
        r
      | None ->
        let home = home_loc ctx t in
        let r = alloc_reg ctx in
        F.load ctx.em ~dst:r ~src:home;
        bind ctx t r;
        r
    in
    consume ctx t;
    r

  let def_reg ctx t =
    match ctx.temps.(t).in_reg with
    | Some r ->
      (* redefinition overwrites the register: any variable cached there
         becomes stale *)
      uncache_reg ctx r;
      touch ctx t;
      protect ctx r;
      r
    | None ->
      let r = alloc_reg ctx in
      bind ctx t r;
      r

  let finish_def ctx t r =
    match ctx.tmpl.Template.ot_temp_slots.(t) with
    | Some s -> F.store ctx.em ~src:r ~off:(slot_off ctx s)
    | None -> ()

  let record_stop ctx ~id ~pc_idx ?alt_idx ?(exit_only = false) ?(elided = false)
      ~pushed ~kind () =
    (match kind with
    | Ir.Sk_loop -> ()
    | Ir.Sk_invoke _ | Ir.Sk_new _ | Ir.Sk_builtin _ | Ir.Sk_mon_enter
    | Ir.Sk_mon_dequeue | Ir.Sk_mon_wake -> ctx.block_has_call <- true);
    ctx.stops :=
      {
        sp_id = id;
        sp_op = ctx.ir.Ir.oi_index;
        sp_pc_idx = pc_idx;
        sp_alt_idx = alt_idx;
        sp_exit_only = exit_only;
        sp_elided = elided;
        sp_pushed = pushed;
        sp_kind = kind;
      }
      :: !(ctx.stops)

  let stop_kind ctx id = (Ir.find_stop ctx.ir id).Ir.sr_kind

  let self_loc ctx =
    match Hashtbl.find_opt ctx.var_cache 0 with
    | Some r ->
      protect ctx r;
      Lreg r
    | None -> Lslot (self_off ctx)

  (* self in a register, caching it for the rest of the inter-stop window *)
  let self_reg ctx ~scratch =
    match Hashtbl.find_opt ctx.var_cache 0 with
    | Some r ->
      protect ctx r;
      r
    | None ->
      let r = scratch () in
      F.load ctx.em ~dst:r ~src:(Lslot (self_off ctx));
      cache_var ctx 0 r;
      r

  (* 0 <= idx < length, with the out-of-range path ending in a bounds
     system call that aborts the thread *)
  let gen_bounds_check ctx ~rv ~ri ~stop =
    let em = ctx.em in
    let scratch () = alloc_reg ctx in
    let l_err = Emitter.fresh_label em and l_ok = Emitter.fresh_label em in
    F.cmp em ~ty:Ir.Aint ~a:(Lreg ri) ~b:(Limm 0l) ~scratch;
    Emitter.branch em (Some I.Lt) l_err;
    let rl = scratch () in
    F.load_mem em ~dst:rl ~base:rv ~disp:Layout.vec_len;
    F.cmp em ~ty:Ir.Aint ~a:(Lreg ri) ~b:(Lreg rl) ~scratch;
    Emitter.branch em (Some I.Lt) l_ok;
    Emitter.place em l_err;
    let idx = F.syscall em ~nr:Sysno.sys_bounds ~args:[ Lreg ri ] ~scratch in
    record_stop ctx ~id:stop ~pc_idx:idx ~pushed:1 ~kind:(stop_kind ctx stop) ();
    Emitter.place em l_ok

  let gen_instr ctx (instr : Ir.instr) =
    ctx.protected <- [];
    let em = ctx.em in
    let scratch () = alloc_reg ctx in
    let const t v =
      let r = def_reg ctx t in
      F.load em ~dst:r ~src:(Limm v);
      finish_def ctx t r
    in
    match instr with
    | Ir.Iconst_int (t, v) -> const t v
    | Ir.Iconst_bool (t, v) -> const t (if v then 1l else 0l)
    | Ir.Iconst_nil t -> const t 0l
    | Ir.Iconst_real (t, v) ->
      let fmt =
        match F.family with
        | A.Vax -> Isa.Float_format.Vax_f
        | A.M68k | A.Sparc -> Isa.Float_format.Ieee_single
      in
      const t (Isa.Float_format.encode fmt v)
    | Ir.Iconst_str (t, s) ->
      let rs = scratch () in
      F.load em ~dst:rs ~src:(self_loc ctx);
      F.load_mem em ~dst:rs ~base:rs ~disp:Layout.obj_desc;
      let r = def_reg ctx t in
      F.load_mem em ~dst:r ~base:rs ~disp:(Layout.desc_string ~nmethods:ctx.nmethods s);
      finish_def ctx t r
    | Ir.Icopy (d, s) ->
      let src = use_loc ctx s in
      let r = def_reg ctx d in
      F.load em ~dst:r ~src;
      finish_def ctx d r
    | Ir.Iload_var (t, v) -> (
      match Hashtbl.find_opt ctx.var_cache v with
      | Some rc ->
        protect ctx rc;
        let r = def_reg ctx t in
        F.load em ~dst:r ~src:(Lreg rc);
        finish_def ctx t r
      | None ->
        let r = def_reg ctx t in
        F.load em ~dst:r ~src:(Lslot (var_off ctx v));
        cache_var ctx v r;
        finish_def ctx t r)
    | Ir.Istore_var (v, s) ->
      let src = use_loc ctx s in
      F.store_loc em ~src ~off:(var_off ctx v) ~scratch;
      (match src with
      | Lreg r -> cache_var ctx v r
      | Limm _ | Lslot _ -> uncache_var ctx v)
    | Ir.Iload_field (t, i) ->
      let rs = self_reg ctx ~scratch in
      let r = def_reg ctx t in
      F.load_mem em ~dst:r ~base:rs ~disp:(Layout.field_offset i);
      finish_def ctx t r
    | Ir.Istore_field (i, s) ->
      let rv = use_reg ctx s in
      let rs = self_reg ctx ~scratch in
      F.store_mem em ~src:rv ~base:rs ~disp:(Layout.field_offset i)
    | Ir.Ibin { dst; op; ty; a; b } ->
      let la = use_loc ctx a in
      let lb = use_loc ctx b in
      let rd = def_reg ctx dst in
      F.bin em op ~ty ~a:la ~b:lb ~dst:rd ~scratch;
      finish_def ctx dst rd
    | Ir.Ineg { dst; ty; a } ->
      let la = use_loc ctx a in
      let rd = def_reg ctx dst in
      F.neg em ~ty ~a:la ~dst:rd ~scratch;
      finish_def ctx dst rd
    | Ir.Inot { dst; a } ->
      let la = use_loc ctx a in
      let rd = def_reg ctx dst in
      F.bin em I.Xor ~ty:Ir.Aint ~a:la ~b:(Limm 1l) ~dst:rd ~scratch;
      finish_def ctx dst rd
    | Ir.Icvt_int_real { dst; a } ->
      let la = use_loc ctx a in
      let rd = def_reg ctx dst in
      F.cvt_int_real em ~a:la ~dst:rd ~scratch;
      finish_def ctx dst rd
    | Ir.Icmp { dst; op; ty; a; b } ->
      let la = use_loc ctx a in
      let lb = use_loc ctx b in
      F.cmp em ~ty ~a:la ~b:lb ~scratch;
      let rd = def_reg ctx dst in
      let l_done = Emitter.fresh_label em in
      F.load em ~dst:rd ~src:(Limm 1l);
      Emitter.branch em (Some op) l_done;
      F.load em ~dst:rd ~src:(Limm 0l);
      Emitter.place em l_done;
      finish_def ctx dst rd
    | Ir.Iinvoke { dst; target; method_index; args; stop; _ } ->
      let tloc = use_loc ctx target in
      let alocs = List.map (use_loc ctx) args in
      let stop_idx, alt_idx = F.invoke em ~target:tloc ~args:alocs ~method_index ~scratch in
      record_stop ctx ~id:stop ~pc_idx:stop_idx ~alt_idx
        ~pushed:(1 + List.length args)
        ~kind:(stop_kind ctx stop) ();
      free_all ctx;
      (match dst with
      | Some d ->
        let rd = def_reg ctx d in
        F.load em ~dst:rd ~src:(Lreg F.retval_reg);
        finish_def ctx d rd
      | None -> ())
    | Ir.Inew { dst; class_index; stop } ->
      let idx =
        F.syscall em ~nr:Sysno.sys_new ~args:[ Limm (Int32.of_int class_index) ] ~scratch
      in
      record_stop ctx ~id:stop ~pc_idx:idx ~pushed:1 ~kind:(stop_kind ctx stop) ();
      free_all ctx;
      let rd = def_reg ctx dst in
      F.load em ~dst:rd ~src:(Lreg F.retval_reg);
      finish_def ctx dst rd
    | Ir.Ibuiltin { dst; bi; args; stop } ->
      let alocs = List.map (use_loc ctx) args in
      let idx = F.syscall em ~nr:(Sysno.of_builtin bi) ~args:alocs ~scratch in
      record_stop ctx ~id:stop ~pc_idx:idx ~pushed:(List.length args)
        ~kind:(stop_kind ctx stop) ();
      free_all ctx;
      (match dst with
      | Some d ->
        let rd = def_reg ctx d in
        F.load em ~dst:rd ~src:(Lreg F.retval_reg);
        finish_def ctx d rd
      | None -> ())
    | Ir.Ivec_get { dst; vec; idx; stop } ->
      let rv = use_reg ctx vec in
      let ri = use_reg ctx idx in
      gen_bounds_check ctx ~rv ~ri ~stop;
      let ra = alloc_reg ctx in
      F.bin em I.Mul ~ty:Ir.Aint ~a:(Lreg ri) ~b:(Limm 4l) ~dst:ra ~scratch;
      F.bin em I.Add ~ty:Ir.Aint ~a:(Lreg ra) ~b:(Lreg rv) ~dst:ra ~scratch;
      let rd = def_reg ctx dst in
      F.load_mem em ~dst:rd ~base:ra ~disp:Layout.vec_elems;
      finish_def ctx dst rd
    | Ir.Ivec_set { vec; idx; src; stop } ->
      let rv = use_reg ctx vec in
      let ri = use_reg ctx idx in
      let rs = use_reg ctx src in
      gen_bounds_check ctx ~rv ~ri ~stop;
      let ra = alloc_reg ctx in
      F.bin em I.Mul ~ty:Ir.Aint ~a:(Lreg ri) ~b:(Limm 4l) ~dst:ra ~scratch;
      F.bin em I.Add ~ty:Ir.Aint ~a:(Lreg ra) ~b:(Lreg rv) ~dst:ra ~scratch;
      F.store_mem em ~src:rs ~base:ra ~disp:Layout.vec_elems
    | Ir.Ivec_len { dst; vec } ->
      let rv = use_reg ctx vec in
      let rd = def_reg ctx dst in
      F.load_mem em ~dst:rd ~base:rv ~disp:Layout.vec_len;
      finish_def ctx dst rd
    | Ir.Imon_enter { stop } ->
      free_all ctx;
      let idx =
        F.syscall em ~nr:Sysno.sys_mon_enter ~args:[ Lslot (self_off ctx) ] ~scratch
      in
      record_stop ctx ~id:stop ~pc_idx:idx ~pushed:1 ~kind:(stop_kind ctx stop) ();
      free_all ctx
    | Ir.Imon_exit { dequeue_stop; wake_stop } ->
      free_all ctx;
      let info = F.mon_exit em ~self:(Lslot (self_off ctx)) ~scratch in
      record_stop ctx ~id:dequeue_stop ~pc_idx:info.me_dequeue_idx
        ~exit_only:info.me_dequeue_exit_only ~pushed:info.me_dequeue_args
        ~kind:(stop_kind ctx dequeue_stop) ();
      record_stop ctx ~id:wake_stop ~pc_idx:info.me_wake_idx ~pushed:info.me_wake_args
        ~kind:(stop_kind ctx wake_stop) ();
      free_all ctx

  let gen_term ctx (term : Ir.terminator) =
    ctx.protected <- [];
    let em = ctx.em in
    let scratch () = alloc_reg ctx in
    match term with
    | Ir.Tjump l ->
      free_all ctx;
      Emitter.branch em None ctx.labels.(l)
    | Ir.Tcond { c; if_true; if_false } ->
      let lc = use_loc ctx c in
      F.cmp em ~ty:Ir.Aint ~a:lc ~b:(Limm 0l) ~scratch;
      free_all ctx;
      Emitter.branch em (Some I.Ne) ctx.labels.(if_true);
      Emitter.branch em None ctx.labels.(if_false)
    | Ir.Tloop { target; stop } ->
      free_all ctx;
      if Opt.(ctx.level >= O2) && ctx.block_has_call then begin
        (* loop-poll elision: every pass over this back edge already
           crosses a system-call bus stop in the same block, so the poll
           adds no capture point the kernel cannot reach.  The stop stays
           in the table (its state-equivalence point is the back branch)
           but is marked elided: landing here from another instance goes
           through a bridge fragment. *)
        let idx = Emitter.next_index em in
        record_stop ctx ~id:stop ~pc_idx:idx ~pushed:0 ~kind:(stop_kind ctx stop)
          ~elided:true ();
        ctx.edits :=
          {
            Opt.ed_pass = "poll-elide";
            ed_index = idx;
            ed_desc = Printf.sprintf "drop loop poll for stop %d (covered by a \
                                      system-call stop in the same block)" stop;
          }
          :: !(ctx.edits);
        Emitter.branch em None ctx.labels.(target)
      end
      else begin
        let idx = Emitter.emit em (I.Poll stop) in
        record_stop ctx ~id:stop ~pc_idx:idx ~pushed:0 ~kind:(stop_kind ctx stop) ();
        Emitter.branch em None ctx.labels.(target)
      end
    | Ir.Treturn ->
      free_all ctx;
      let result_offset = Option.map (fun v -> var_off ctx v) ctx.ir.Ir.oi_result in
      F.epilogue em ~result_offset

  let compile_op em ~level ~edits ~nmethods ~stops (op_ir : Ir.op_ir)
      (tmpl : Template.op_t) =
    let n_slots = tmpl.Template.ot_nslots in
    let frame_size = F.frame_size ~n_slots ~n_scratch:n_scratch_slots in
    let entry_idx = Emitter.next_index em in
    let n_temps = Array.length op_ir.Ir.oi_temp_types in
    let ctx =
      {
        em;
        tmpl;
        ir = op_ir;
        nmethods;
        n_slots;
        frame_size;
        temps = Array.init n_temps (fun _ -> { in_reg = None; spill = None });
        use_count =
          (let counts = Array.make (max n_temps 1) 0 in
           Array.iter
             (fun (blk : Ir.block) ->
               List.iter
                 (fun i -> List.iter (fun t -> counts.(t) <- counts.(t) + 1) (Ir.uses i))
                 blk.Ir.b_instrs;
               List.iter
                 (fun t -> counts.(t) <- counts.(t) + 1)
                 (Ir.term_uses blk.Ir.b_term))
             op_ir.Ir.oi_blocks;
           counts);
        temp_of_reg = Hashtbl.create 16;
        protected = [];
        stamp = 0;
        last_use = Array.make (max n_temps 1) 0;
        free_spills = List.init n_scratch_slots Fun.id;
        labels = Array.map (fun (b : Ir.block) -> b.Ir.b_label) op_ir.Ir.oi_blocks;
        stops;
        level;
        copt = Opt.(level >= O1);
        edits;
        block_has_call = false;
        var_cache = Hashtbl.create 8;
        cache_of_reg = Hashtbl.create 8;
      }
    in
    (* emitter labels for IR blocks *)
    Array.iteri (fun i _ -> ctx.labels.(i) <- Emitter.fresh_label em) op_ir.Ir.oi_blocks;
    let param_offsets =
      Array.init tmpl.Template.ot_nparams (fun i -> var_off ctx i)
    in
    F.prologue em ~frame_size ~param_offsets;
    Array.iteri
      (fun bi (blk : Ir.block) ->
        Emitter.place em ctx.labels.(bi);
        free_all ctx;
        ctx.block_has_call <- false;
        List.iter (gen_instr ctx) blk.Ir.b_instrs;
        gen_term ctx blk.Ir.b_term)
      op_ir.Ir.oi_blocks;
    let frame =
      {
        Busstop.fr_op = op_ir.Ir.oi_index;
        fr_frame_size = frame_size;
        fr_slot_offsets = Array.init n_slots (fun s -> slot_off ctx s);
        fr_fixed_sp_depth = F.fixed_sp_depth ~frame_size;
      }
    in
    (entry_idx, frame)

  let compile_class_at ?(level = Opt.O0) ~arch ~code_oid (cl : Ir.class_ir)
      (ctmpl : Template.class_t) =
    assert (A.equal_family arch.A.family F.family);
    let em = Emitter.create F.family in
    let nmethods = Array.length cl.Ir.cl_ops in
    let stops = ref [] in
    let edits = ref [] in
    let results =
      Array.map2
        (fun op_ir tmpl -> compile_op em ~level ~edits ~nmethods ~stops op_ir tmpl)
        cl.Ir.cl_ops ctmpl.Template.ct_ops
    in
    (* the optimizer pass pipeline; each pass protects every bus-stop PC,
       alternate PC and method entry, and remaps them afterwards *)
    let apply_pass pass results =
      let protected_idx =
        List.concat_map
          (fun p ->
            p.sp_pc_idx
            ::
            (match p.sp_alt_idx with
            | Some a -> [ a ]
            | None -> []))
          !stops
        @ Array.to_list (Array.map fst results)
      in
      let remap = Emitter.optimize em ~protected_idx ~pass in
      stops :=
        List.map
          (fun p ->
            {
              p with
              sp_pc_idx = remap p.sp_pc_idx;
              sp_alt_idx = Option.map remap p.sp_alt_idx;
            })
          !stops;
      Array.map (fun (entry_idx, frame) -> (remap entry_idx, frame)) results
    in
    let results =
      if Opt.(level >= O1) then
        apply_pass
          (fun ~protected insns ->
            Peephole.optimize ~family:F.family ~protected ~edits insns)
          results
      else results
    in
    let results =
      if Opt.(level >= O2) then
        apply_pass
          (fun ~protected insns ->
            Opt2.optimize ~family:F.family ~protected ~edits insns)
          results
      else results
    in
    let methods =
      Array.map2
        (fun (op_ir : Ir.op_ir) (entry_idx, _) -> (op_ir.Ir.oi_name, entry_idx))
        cl.Ir.cl_ops results
    in
    let insns = Emitter.finalize em in
    let code =
      Isa.Code.make ~inst:(Opt.to_int level) ~arch ~code_oid
        ~class_name:cl.Ir.cl_name ~methods insns
    in
    let offset_of idx =
      if idx >= Array.length code.Isa.Code.offsets then code.Isa.Code.byte_size
      else code.Isa.Code.offsets.(idx)
    in
    let protos = List.sort (fun a b -> compare a.sp_id b.sp_id) !stops in
    let entries =
      Array.of_list
        (List.map
           (fun p ->
             let frame_size =
               let _, frame = results.(p.sp_op) in
               frame.Busstop.fr_frame_size
             in
             {
               Busstop.be_id = p.sp_id;
               be_op = p.sp_op;
               be_pc = offset_of p.sp_pc_idx;
               be_alt_pc = Option.map offset_of p.sp_alt_idx;
               be_exit_only = p.sp_exit_only;
               be_elided = p.sp_elided;
               be_sp_depth =
                 F.fixed_sp_depth ~frame_size + F.arg_push_bytes p.sp_pushed;
               be_pop_bytes = F.arg_push_bytes p.sp_pushed;
               be_kind = p.sp_kind;
             })
           protos)
    in
    let frames = Array.map snd results in
    let table = Busstop.make ~arch_id:arch.A.id ~entries ~frames in
    (code, table, List.rev !edits)

  let compile_class ?(optimize = false) ~arch ~code_oid cl ctmpl =
    let code, table, _ =
      compile_class_at ~level:(Opt.of_optimize optimize) ~arch ~code_oid cl ctmpl
    in
    (code, table)
end
