(** Static checking and name resolution.

    Produces a typed AST with every name resolved to a parameter, result,
    local, or field of the enclosing object, and every invocation resolved
    to a method index (the dispatch-table slot, identical on every
    architecture).  Implicit [int] to [real] promotions are made explicit.

    Restrictions (all reported as errors):
    - operations have at most one result and at most 5 parameters (the
      SPARC backend passes self plus arguments in the six out registers);
    - field initialisers are literals — richer initialisation belongs in
      an [initially] operation, which [new] invokes;
    - fields are accessible only from their own object's operations. *)

type class_info = {
  ci_index : int;
  ci_name : string;
  ci_fields : (string * Ast.typ) array;
  ci_attached : bool array;
  ci_methods : method_sig array;  (** including ["$process"], when present *)
  ci_has_initially : bool;
  ci_has_process : bool;
  ci_conditions : string array;
}

and method_sig = {
  m_index : int;
  m_name : string;
  m_monitored : bool;
  m_params : (string * Ast.typ) list;
  m_result : Ast.typ option;
}

type var_ref =
  | Vparam of int  (** 0-based among declared parameters (self excluded) *)
  | Vresult
  | Vlocal of int
  | Vfield of int

type texpr = {
  te_t : Ast.typ;
  te_pos : Ast.pos;
  te_d : texpr_desc;
}

and texpr_desc =
  | TEint of int32
  | TEreal of float
  | TEbool of bool
  | TEstr of string
  | TEnil
  | TEvar of var_ref * string
  | TEself
  | TEbin of Ast.binop * texpr * texpr
  | TEun of Ast.unop * texpr
  | TEinvoke of texpr * class_info * method_sig * texpr list
  | TEnew of class_info * texpr list
  | TEvec_new of Ast.typ * texpr  (** element type, length *)
  | TEindex of texpr * texpr
  | TEveclen of texpr
  | TElocate of texpr
  | TEthisnode
  | TEtimenow
  | TEcvt_int_to_real of texpr

type tstmt =
  | TSdecl of int * texpr  (** initialise local [i] *)
  | TSassign of var_ref * texpr
  | TSindex_assign of texpr * texpr * texpr
  | TSexpr of texpr
  | TSif of (texpr * tstmt list) list * tstmt list
  | TSloop of tstmt list
  | TSexit of texpr option
  | TSreturn
  | TSmove of texpr * texpr
  | TSprint of texpr list
  | TSwait of int * texpr option
      (** condition index; optional timeout in virtual microseconds *)
  | TSsignal of int
  | TSnotifyall of int

type top = {
  t_sig : method_sig;
  t_locals : (string * Ast.typ) array;
  t_body : tstmt list;
}

type tclass = {
  tc_info : class_info;
  tc_field_inits : texpr array;
  tc_ops : top array;
}

type tprog = {
  tp_classes : tclass array;
}

val check : Ast.program -> tprog
(** @raise Diag.Compile_error *)

val find_class : tprog -> string -> tclass option
