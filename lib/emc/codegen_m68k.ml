module A = Isa.Arch
module R = Isa.Reg
module I = Isa.Insn
module O = Isa.Operand
module E = Codegen_common.Emitter

let fp = R.fp A.M68k (* A6 *)
let sp = R.sp A.M68k (* A7 *)
let d0 = 0

let operand (l : Codegen_common.loc) : O.t =
  match l with
  | Codegen_common.Lreg r -> O.Reg r
  | Codegen_common.Limm v -> O.Imm v
  | Codegen_common.Lslot off -> O.Mem (O.Disp (fp, off))

let is_mem = function
  | Codegen_common.Lslot _ -> true
  | Codegen_common.Lreg _ | Codegen_common.Limm _ -> false

module Family : Codegen_common.FAMILY = struct
  let family = A.M68k
  let frame_size ~n_slots ~n_scratch = 4 * (n_slots + n_scratch)

  (* slots grow upward from the deep end of the frame: slot 0 sits at the
     lowest address — the reverse of the VAX layout *)
  let slot_offset ~n_slots s = -4 * (n_slots - s)
  let scratch_offset ~n_slots ~n_scratch:_ s = -4 * (n_slots + s + 1)
  let fixed_sp_depth ~frame_size = frame_size
  let arg_push_bytes n = 4 * n
  let retval_reg = d0

  (* frame: [A6]=saved A6, [A6+4]=return address, [A6+8]=self, ... *)
  let prologue em ~frame_size ~param_offsets =
    ignore (E.emit em (I.Link frame_size));
    Array.iteri
      (fun i off ->
        ignore
          (E.emit em (I.Mov (O.Mem (O.Disp (fp, 8 + (4 * i))), O.Mem (O.Disp (fp, off))))))
      param_offsets

  let epilogue em ~result_offset =
    (match result_offset with
    | Some off -> ignore (E.emit em (I.Mov (O.Mem (O.Disp (fp, off)), O.Reg d0)))
    | None -> ());
    ignore (E.emit em I.Unlk);
    ignore (E.emit em I.Rts)

  let load em ~dst ~src = ignore (E.emit em (I.Mov (operand src, O.Reg dst)))
  let store em ~src ~off = ignore (E.emit em (I.Mov (O.Reg src, O.Mem (O.Disp (fp, off)))))

  let store_loc em ~src ~off ~scratch:_ =
    (* MOVE allows memory-to-memory *)
    ignore (E.emit em (I.Mov (operand src, O.Mem (O.Disp (fp, off)))))

  let load_mem em ~dst ~base ~disp =
    ignore (E.emit em (I.Mov (O.Mem (O.Disp (base, disp)), O.Reg dst)))

  let store_mem em ~src ~base ~disp =
    ignore (E.emit em (I.Mov (O.Reg src, O.Mem (O.Disp (base, disp)))))

  (* two-address arithmetic: dst <- dst op src, dst in a register here *)
  let bin em op ~ty ~a ~b ~dst ~scratch:_ =
    load em ~dst ~src:a;
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Bin2 (op, operand b, O.Reg dst)))
    | Ir.Areal -> ignore (E.emit em (I.Fbin2 (op, operand b, O.Reg dst)))

  let neg em ~ty ~a ~dst ~scratch:_ =
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Neg (operand a, O.Reg dst)))
    | Ir.Areal -> ignore (E.emit em (I.Fneg (operand a, O.Reg dst)))

  let cvt_int_real em ~a ~dst ~scratch:_ =
    ignore (E.emit em (I.Cvt_if (operand a, O.Reg dst)))

  let cmp em ~ty ~a ~b ~scratch =
    (* CMP allows at most one memory operand *)
    let a, b =
      if is_mem a && is_mem b then begin
        let r = scratch () in
        load em ~dst:r ~src:a;
        (Codegen_common.Lreg r, b)
      end
      else (a, b)
    in
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Cmp (operand a, operand b)))
    | Ir.Areal -> ignore (E.emit em (I.Fcmp (operand a, operand b)))

  let push em l = ignore (E.emit em (I.Mov (operand l, O.Mem (O.Autodec sp))))

  let invoke em ~target ~args ~method_index ~scratch =
    let rt = scratch () in
    load em ~dst:rt ~src:target;
    List.iter (fun a -> push em a) (List.rev args);
    push em (Codegen_common.Lreg rt);
    let rf = scratch () in
    ignore (E.emit em (I.Mov (O.Mem (O.Disp (rt, Layout.obj_flags)), O.Reg rf)));
    (* AND sets the condition codes on the M68k *)
    ignore
      (E.emit em (I.Bin2 (I.And, O.Imm (Int32.of_int Layout.flag_resident), O.Reg rf)));
    let l_local = E.fresh_label em and l_ret = E.fresh_label em in
    E.branch em (Some I.Ne) l_local;
    let alt_idx = E.emit em (I.Syscall Sysno.sys_invoke) in
    E.branch em None l_ret;
    E.place em l_local;
    ignore (E.emit em (I.Mov (O.Mem (O.Disp (rt, Layout.obj_desc)), O.Reg rf)));
    ignore
      (E.emit em (I.Mov (O.Mem (O.Disp (rf, Layout.desc_method method_index)), O.Reg rf)));
    ignore (E.emit em (I.Jsr_ind rf));
    E.place em l_ret;
    let nargs = 1 + List.length args in
    let stop_idx = E.emit em (I.Bin2 (I.Add, O.Imm (Int32.of_int (4 * nargs)), O.Reg sp)) in
    (stop_idx, alt_idx)

  let syscall em ~nr ~args ~scratch:_ =
    List.iter (fun a -> push em a) (List.rev args);
    E.emit em (I.Syscall nr)

  let mon_exit em ~self ~scratch =
    push em self;
    let dequeue_idx = E.emit em (I.Syscall Sysno.sys_mon_exit_dequeue) in
    ignore (E.emit em (I.Cmp (O.Reg d0, O.Imm 0l)));
    let l_release = E.fresh_label em and l_done = E.fresh_label em in
    E.branch em (Some I.Eq) l_release;
    push em (Codegen_common.Lreg d0);
    let wake_idx = E.emit em (I.Syscall Sysno.sys_mon_wake) in
    E.branch em None l_done;
    E.place em l_release;
    let rs = scratch () in
    load em ~dst:rs ~src:self;
    ignore (E.emit em (I.Mov (O.Imm 0l, O.Mem (O.Disp (rs, Layout.obj_lock)))));
    E.place em l_done;
    {
      Codegen_common.me_dequeue_idx = dequeue_idx;
      me_dequeue_exit_only = false;
      me_dequeue_args = 1;
      me_wake_idx = wake_idx;
      me_wake_args = 1;
    }
end

module Driver = Codegen_common.Make (Family)

let compile_class = Driver.compile_class

let compile_class_at = Driver.compile_class_at
