(** System-call numbers, shared between the code generators and the
    runtime kernel.  Transfers of control to the runtime system happen
    only here and at loop-bottom polls — the bus-stop discipline. *)

val sys_invoke : int
(** remote-invocation path of an invocation site; stack/register args:
    target ref, then the declared arguments *)

val sys_new : int  (** args: class index (immediate) *)

val sys_mon_enter : int  (** args: object ref *)

val sys_mon_exit_dequeue : int
(** args: object ref; result: dequeued waiter node address or 0.
    Used by the non-VAX backends — the VAX does this with REMQUE. *)

val sys_mon_wake : int  (** args: waiter node address *)

val sys_print_int : int
val sys_print_real : int
val sys_print_bool : int
val sys_print_str : int
val sys_print_ref : int
val sys_print_nl : int
val sys_locate : int
val sys_thisnode : int
val sys_timenow : int
val sys_move : int  (** args: object ref, node id *)

val sys_sconcat : int
val sys_seq : int
val sys_vec_new : int
val sys_bounds : int
val sys_start_process : int
val sys_cond_wait : int
val sys_cond_signal : int
val sys_cond_wait_timed : int
val sys_cond_notify_all : int

val of_builtin : Ir.builtin -> int
val name : int -> string
