type pos = {
  line : int;
  col : int;
}

type typ =
  | Tint
  | Treal
  | Tbool
  | Tstring
  | Tobj of string
  | Tvec of typ
  | Tnil

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band
  | Bor

type unop =
  | Uneg
  | Unot

type expr = {
  e_pos : pos;
  e_desc : expr_desc;
}

and expr_desc =
  | Eint of int32
  | Ereal of float
  | Ebool of bool
  | Estr of string
  | Enil
  | Evar of string
  | Eself
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Einvoke of expr * string * expr list
  | Enew of string * expr list
  | Evec_new of typ * expr
  | Eindex of expr * expr
  | Elocate of expr
  | Ethisnode
  | Etimenow

type stmt = {
  s_pos : pos;
  s_desc : stmt_desc;
}

and stmt_desc =
  | Svar of string * typ * expr
  | Sassign of string * expr
  | Sindex_assign of expr * expr * expr
  | Sexpr of expr
  | Sif of (expr * stmt list) list * stmt list
  | Sloop of stmt list
  | Sexit of expr option
  | Swhile of expr * stmt list
  | Sreturn
  | Smove of expr * expr
  | Sprint of expr list
  | Swait of string * expr option
  | Ssignal of string
  | Snotifyall of string

type op_decl = {
  op_pos : pos;
  op_name : string;
  op_monitored : bool;
  op_params : (string * typ) list;
  op_results : (string * typ) list;
  op_body : stmt list;
}

type field_decl = {
  f_pos : pos;
  f_name : string;
  f_type : typ;
  f_attached : bool;
  f_init : expr;
}

type class_decl = {
  c_pos : pos;
  c_name : string;
  c_fields : field_decl list;
  c_ops : op_decl list;
  c_conditions : (pos * string) list;
  c_process : stmt list option;
}

type program = {
  prog_classes : class_decl list;
}

let rec typ_equal a b =
  match a, b with
  | Tint, Tint | Treal, Treal | Tbool, Tbool | Tstring, Tstring | Tnil, Tnil -> true
  | Tobj x, Tobj y -> String.equal x y
  | Tvec x, Tvec y -> typ_equal x y
  | (Tint | Treal | Tbool | Tstring | Tobj _ | Tvec _ | Tnil), _ -> false

let rec typ_name = function
  | Tint -> "int"
  | Treal -> "real"
  | Tbool -> "bool"
  | Tstring -> "string"
  | Tobj c -> c
  | Tvec t -> "vector of " ^ typ_name t
  | Tnil -> "nil"

let pp_typ ppf t = Format.pp_print_string ppf (typ_name t)

let binop_name = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Beq -> "=="
  | Bne -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Band -> "and"
  | Bor -> "or"

let no_pos = { line = 0; col = 0 }
