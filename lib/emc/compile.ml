type arch_artifact = {
  aa_arch : Isa.Arch.t;
  aa_level : Opt.level;
  aa_code : Isa.Code.t;
  aa_stops : Busstop.table;
  aa_edits : Opt.edit list;
  aa_stop_live : Template.entity_slot list array;
}

type compiled_class = {
  cc_name : string;
  cc_index : int;
  cc_oid : int32;
  cc_template : Template.class_t;
  cc_ir : Ir.class_ir;
  cc_levels : Opt.level list;
  cc_arts : ((string * Opt.level) * arch_artifact) list;
}

type program = {
  p_name : string;
  p_ir : Ir.program_ir;
  p_classes : compiled_class array;
}

let backend_for (arch : Isa.Arch.t) =
  match arch.Isa.Arch.family with
  | Isa.Arch.Vax -> Codegen_vax.compile_class_at
  | Isa.Arch.M68k -> Codegen_m68k.compile_class_at
  | Isa.Arch.Sparc -> Codegen_sparc.compile_class_at

(* dedup preserving first occurrence: the first level is the primary one *)
let norm_levels levels =
  List.fold_left (fun acc l -> if List.mem l acc then acc else acc @ [ l ]) [] levels

let compile_exn ?db ?(optimize = false) ?levels ~name ~archs source =
  let levels =
    match levels with
    | Some [] | None -> [ Opt.of_optimize optimize ]
    | Some ls -> norm_levels ls
  in
  let db =
    match db with
    | Some db -> db
    | None -> Program_db.create ()
  in
  let ast = Parser.parse_program source in
  let tprog = Typecheck.check ast in
  let ir = Lower.lower_program ~name tprog in
  let classes =
    Array.map
      (fun (cl : Ir.class_ir) ->
        let oid = Program_db.assign db ~program:name ~class_name:cl.Ir.cl_name in
        let template = Slot_alloc.build_class cl ~oid in
        let stop_live =
          Array.init template.Template.ct_nstops (fun id ->
              (Template.stop_by_id template id).Template.st_live)
        in
        let arts =
          List.concat_map
            (fun arch ->
              List.map
                (fun level ->
                  let code, stops, edits =
                    (backend_for arch) ~level ~arch ~code_oid:oid cl template
                  in
                  ( (arch.Isa.Arch.id, level),
                    {
                      aa_arch = arch;
                      aa_level = level;
                      aa_code = code;
                      aa_stops = stops;
                      aa_edits = edits;
                      aa_stop_live = stop_live;
                    } ))
                levels)
            archs
        in
        {
          cc_name = cl.Ir.cl_name;
          cc_index = cl.Ir.cl_index;
          cc_oid = oid;
          cc_template = template;
          cc_ir = cl;
          cc_levels = levels;
          cc_arts = arts;
        })
      ir.Ir.pr_classes
  in
  { p_name = name; p_ir = ir; p_classes = classes }

let compile ?db ?optimize ?levels ~name ~archs source =
  match compile_exn ?db ?optimize ?levels ~name ~archs source with
  | prog -> Ok prog
  | exception Diag.Compile_error errs -> Error errs

let find_class prog name =
  Array.find_opt (fun c -> String.equal c.cc_name name) prog.p_classes

let primary_level cc =
  match cc.cc_levels with
  | l :: _ -> l
  | [] -> Opt.O0

let artifact_at cc ~arch_id ~level = List.assoc_opt (arch_id, level) cc.cc_arts

let artifact cc ~arch_id =
  match artifact_at cc ~arch_id ~level:(primary_level cc) with
  | Some a -> a
  | None ->
    invalid_arg
      (Printf.sprintf "Compile.artifact: class %s was not compiled for %s" cc.cc_name
         arch_id)

let class_by_index prog i = prog.p_classes.(i)
