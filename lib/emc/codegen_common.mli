(** Code-generation driver, shared across the three instruction-set
    families.

    The driver walks the IR, manages labels and a simple local register
    allocator (temporaries live in scratch registers between bus stops and
    are flushed to their template slots across stops and block edges — the
    discipline that lets one template per operation suffice, section 3.2),
    and records the bus-stop table entries as code is emitted.  All
    instruction selection, frame geometry and calling-convention detail
    lives in the per-family modules ({!Codegen_vax}, {!Codegen_m68k},
    {!Codegen_sparc}) implementing {!FAMILY}. *)

module Emitter : sig
  type t

  val create : Isa.Arch.family -> t
  val family : t -> Isa.Arch.family
  val emit : t -> Isa.Insn.t -> int
  val next_index : t -> int
  val fresh_label : t -> int
  val place : t -> int -> unit
  val branch : t -> Isa.Insn.cmp option -> int -> unit
  (** conditional or unconditional branch to a label, fixed up later *)

  val optimize :
    t ->
    protected_idx:int list ->
    pass:(protected:bool array -> Isa.Insn.t array -> Isa.Insn.t array * int array) ->
    int ->
    int
  (** Run one between-bus-stops optimizer pass ({!Peephole}, {!Opt2}) over
      the emitted buffer, fixing labels and branch fixups in place.
      [protected_idx] lists instruction indexes that must survive (bus
      stops, method entries); the returned function remaps old indexes to
      new ones. *)

  val finalize : t -> Isa.Insn.t array
  (** Resolve all label fixups to byte offsets. *)
end

type loc =
  | Lreg of Isa.Reg.t
  | Limm of int32
  | Lslot of int  (** FP-relative byte offset *)

type mon_exit_info = {
  me_dequeue_idx : int;  (** instruction index of the dequeue stop *)
  me_dequeue_exit_only : bool;
  me_dequeue_args : int;  (** words pushed for the dequeue (VAX: 0) *)
  me_wake_idx : int;
  me_wake_args : int;
}

module type FAMILY = sig
  val family : Isa.Arch.family

  (* frame geometry *)
  val frame_size : n_slots:int -> n_scratch:int -> int
  val slot_offset : n_slots:int -> int -> int
  val scratch_offset : n_slots:int -> n_scratch:int -> int -> int
  val fixed_sp_depth : frame_size:int -> int
  val arg_push_bytes : int -> int

  val retval_reg : Isa.Reg.t

  (* emission *)
  val prologue : Emitter.t -> frame_size:int -> param_offsets:int array -> unit
  val epilogue : Emitter.t -> result_offset:int option -> unit
  val load : Emitter.t -> dst:Isa.Reg.t -> src:loc -> unit
  val store : Emitter.t -> src:Isa.Reg.t -> off:int -> unit
  val store_loc : Emitter.t -> src:loc -> off:int -> scratch:(unit -> Isa.Reg.t) -> unit
  val load_mem : Emitter.t -> dst:Isa.Reg.t -> base:Isa.Reg.t -> disp:int -> unit
  val store_mem : Emitter.t -> src:Isa.Reg.t -> base:Isa.Reg.t -> disp:int -> unit

  val bin :
    Emitter.t ->
    Isa.Insn.binop ->
    ty:Ir.arith_ty ->
    a:loc ->
    b:loc ->
    dst:Isa.Reg.t ->
    scratch:(unit -> Isa.Reg.t) ->
    unit

  val neg :
    Emitter.t -> ty:Ir.arith_ty -> a:loc -> dst:Isa.Reg.t -> scratch:(unit -> Isa.Reg.t) -> unit

  val cvt_int_real :
    Emitter.t -> a:loc -> dst:Isa.Reg.t -> scratch:(unit -> Isa.Reg.t) -> unit

  val cmp :
    Emitter.t -> ty:Ir.arith_ty -> a:loc -> b:loc -> scratch:(unit -> Isa.Reg.t) -> unit

  val invoke :
    Emitter.t ->
    target:loc ->
    args:loc list ->
    method_index:int ->
    scratch:(unit -> Isa.Reg.t) ->
    int * int
  (** Emit the full invocation sequence (argument passing, residency test,
      remote-path system call, dispatch-table call, argument pop).
      Returns [(stop_pc_index, remote_syscall_index)]. *)

  val syscall : Emitter.t -> nr:int -> args:loc list -> scratch:(unit -> Isa.Reg.t) -> int
  (** Emit a system call; returns the [Syscall] instruction index. *)

  val mon_exit : Emitter.t -> self:loc -> scratch:(unit -> Isa.Reg.t) -> mon_exit_info
  (** Emit the monitor-exit sequence: dequeue a waiter (REMQUE on the VAX,
      a system call elsewhere), wake it if there is one, otherwise release
      the lock. *)
end

module Make (F : FAMILY) : sig
  val compile_class_at :
    ?level:Opt.level ->
    arch:Isa.Arch.t ->
    code_oid:int32 ->
    Ir.class_ir ->
    Template.class_t ->
    Isa.Code.t * Busstop.table * Opt.edit list
  (** Compile one code instance of the class at the given optimization
      level (default [O0]).  The returned code is tagged with the level
      ({!Isa.Code.t.code_inst}); the edit list records, in application
      order, every optimizer transformation with the pass name and the
      index into that pass's input buffer ([emdis --opt-diff] provenance). *)

  val compile_class :
    ?optimize:bool ->
    arch:Isa.Arch.t ->
    code_oid:int32 ->
    Ir.class_ir ->
    Template.class_t ->
    Isa.Code.t * Busstop.table
  (** Back-compatible wrapper: [optimize:false] is [compile_class_at
      ~level:O0], [optimize:true] is [~level:O1]. *)
end
