(** MC680x0 code generator (Sun-3 and HP9000/300 machines).

    Big-endian CISC: two-address arithmetic (at most one memory operand),
    LINK/UNLK frames, arguments pushed with pre-decrement moves, local
    slots laid out in the opposite order from the VAX — a deliberately
    different activation-record geometry for the same templates. *)

module Family : Codegen_common.FAMILY

val compile_class :
  ?optimize:bool ->
  arch:Isa.Arch.t ->
  code_oid:int32 ->
  Ir.class_ir ->
  Template.class_t ->
  Isa.Code.t * Busstop.table

val compile_class_at :
  ?level:Opt.level ->
  arch:Isa.Arch.t ->
  code_oid:int32 ->
  Ir.class_ir ->
  Template.class_t ->
  Isa.Code.t * Busstop.table * Opt.edit list
