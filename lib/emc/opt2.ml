(* -O2: windowed redundant-load elimination / slot-to-register promotion.

   {!Peephole} (-O1) only sees immediately adjacent store/reload pairs.
   This pass tracks, across each straight-line window, which register
   last stored to or loaded from each stable memory operand (frame slot
   or absolute), and rewrites later reloads of the same location into
   register moves — or deletes them outright when the value is already in
   the destination register.

   Windows are conservative: all facts die at every protected index
   (bus-stop PCs, method entries, label positions — each is a potential
   resume or join point where only slots, SP and FP are guaranteed), at
   every control transfer, at system calls and polls, at stack-shape
   instructions, and whenever a register a fact depends on is written.
   This keeps the canonical-slots-at-stops mobility contract intact by
   construction: no store to a slot is ever removed or moved, so the
   memory image at every bus stop is identical to the -O0 instance's. *)

module I = Isa.Insn
module O = Isa.Operand

let stable_mem = function
  | O.Mem (O.Disp (_, _) as m) -> Some m
  | O.Mem (O.Abs _ as m) -> Some m
  | O.Mem (O.Autoinc _) | O.Mem (O.Autodec _) | O.Reg _ | O.Imm _ -> None

let mem_base = function
  | O.Disp (r, _) -> Some r
  | O.Abs _ -> None
  | O.Autoinc r | O.Autodec r -> Some r

(* two stable operands that certainly do not overlap (all generated
   accesses are 4-byte words at 4-aligned offsets) *)
let disjoint m1 m2 =
  match (m1, m2) with
  | O.Disp (r1, d1), O.Disp (r2, d2) -> r1 = r2 && abs (d1 - d2) >= 4
  | O.Abs a1, O.Abs a2 -> Int32.abs (Int32.sub a1 a2) >= 4l
  | _, _ -> false

let auto_modified = function
  | O.Mem (O.Autoinc r) | O.Mem (O.Autodec r) -> Some r
  | O.Mem (O.Disp (_, _)) | O.Mem (O.Abs _) | O.Reg _ | O.Imm _ -> None

let optimize ~family ~protected ?edits insns =
  let n = Array.length insns in
  let out = Array.copy insns in
  let deleted = Array.make n false in
  let facts : (O.mem * Isa.Reg.t) list ref = ref [] in
  let reset () = facts := [] in
  let kill_reg r =
    facts := List.filter (fun (m, fr) -> fr <> r && mem_base m <> Some r) !facts
  in
  let kill_mem m = facts := List.filter (fun (m', _) -> disjoint m m') !facts in
  let record pass i desc =
    match edits with
    | Some l -> l := { Opt.ed_pass = pass; ed_index = i; ed_desc = desc } :: !l
    | None -> ()
  in
  let pp_insn insn = Format.asprintf "%a" (I.pp family) insn in
  (* generic effect of an instruction on the fact set, for everything the
     main match does not model precisely *)
  let generic_effect insn =
    let dst_effect d =
      match d with
      | O.Reg r -> kill_reg r
      | O.Mem (O.Disp (_, _) as m) | O.Mem (O.Abs _ as m) -> kill_mem m
      | O.Mem (O.Autoinc _) | O.Mem (O.Autodec _) | O.Imm _ -> reset ()
    in
    let auto ops = if List.exists (fun o -> auto_modified o <> None) ops then reset () in
    match insn with
    | I.Mov (a, b) ->
      auto [ a; b ];
      dst_effect b
    | I.Bin3 (_, a, b, c) | I.Fbin3 (_, a, b, c) ->
      auto [ a; b; c ];
      dst_effect c
    | I.Bin2 (_, a, b) | I.Fbin2 (_, a, b) ->
      auto [ a; b ];
      dst_effect b
    | I.Neg (a, b) | I.Fneg (a, b) | I.Cvt_if (a, b) | I.Cvt_fi (a, b) ->
      auto [ a; b ];
      dst_effect b
    | I.Cmp (a, b) | I.Fcmp (a, b) -> auto [ a; b ]
    | I.Sethi (_, r) -> kill_reg r
    | I.Nop -> ()
    | I.Bcc _ | I.Br _ | I.Jmp_abs _ | I.Jsr_ind _ | I.Push _ | I.Vax_entry _
    | I.Vax_ret | I.Link _ | I.Unlk | I.Rts | I.Save _ | I.Restore | I.Retl
    | I.Syscall _ | I.Poll _ | I.Remque _ | I.Halt -> reset ()
  in
  for i = 0 to n - 1 do
    if protected.(i) then reset ();
    if not deleted.(i) then begin
      match out.(i) with
      | I.Mov (src, O.Reg r) when stable_mem src <> None -> (
        let m = Option.get (stable_mem src) in
        match List.find_opt (fun (m', _) -> m' = m) !facts with
        | Some (_, r') when not protected.(i) ->
          if r' = r then begin
            record "rle" i (Printf.sprintf "drop redundant reload: %s" (pp_insn out.(i)));
            deleted.(i) <- true
            (* facts unchanged: r still holds m *)
          end
          else begin
            record "rle" i
              (Printf.sprintf "promote reload to register move: %s" (pp_insn out.(i)));
            out.(i) <- I.Mov (O.Reg r', O.Reg r);
            kill_reg r;
            facts := (m, r) :: !facts
          end
        | Some _ | None ->
          (* plain load: afterwards r mirrors m (unless m is based on r) *)
          kill_reg r;
          if mem_base m <> Some r then facts := (m, r) :: !facts
        )
      | I.Mov (O.Reg r, dst) when stable_mem dst <> None ->
        (* store through: memory at m now equals r *)
        let m = Option.get (stable_mem dst) in
        kill_mem m;
        if mem_base m <> Some r then facts := (m, r) :: !facts
      | insn -> generic_effect insn
    end
  done;
  let remap = Array.make n 0 in
  let kept = ref [] in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    remap.(i) <- !pos;
    if not deleted.(i) then begin
      kept := out.(i) :: !kept;
      incr pos
    end
  done;
  (Array.of_list (List.rev !kept), remap)
