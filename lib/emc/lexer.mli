(** Lexical analysis for the Emerald-like source language. *)

type token =
  | INT of int32
  | REAL of float
  | STRING of string
  | IDENT of string
  | KOBJECT
  | KEND
  | KVAR
  | KATTACHED
  | KOPERATION
  | KMONITOR
  | KIF
  | KTHEN
  | KELSEIF
  | KELSE
  | KLOOP
  | KEXIT
  | KWHEN
  | KWHILE
  | KRETURN
  | KMOVE
  | KTO
  | KNEW
  | KSELF
  | KTRUE
  | KFALSE
  | KNIL
  | KAND
  | KOR
  | KNOT
  | KPRINT
  | KLOCATE
  | KTHISNODE
  | KTIMENOW
  | KVECTOR
  | KPROCESS
  | KCONDITION
  | KWAIT
  | KSIGNAL
  | KNOTIFY
  | KNOTIFYALL
  | KTIMEOUT
  | LARROW  (** [<-] *)
  | RARROW  (** [->] *)
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LE
  | GE
  | LT
  | GT
  | EOF

val tokenize : string -> (token * Ast.pos) list
(** @raise Diag.Compile_error on lexical errors. *)

val token_name : token -> string
