(** SPARC code generator.

    Big-endian RISC: load/store architecture, fixed 4-byte instructions,
    13-bit immediates with SETHI for larger constants, register-window
    SAVE/RESTORE frames, arguments passed in the out registers, the return
    address in %o7, and a delay-slot NOP after calls. *)

module Family : Codegen_common.FAMILY

val compile_class :
  ?optimize:bool ->
  arch:Isa.Arch.t ->
  code_oid:int32 ->
  Ir.class_ir ->
  Template.class_t ->
  Isa.Code.t * Busstop.table

val compile_class_at :
  ?level:Opt.level ->
  arch:Isa.Arch.t ->
  code_oid:int32 ->
  Ir.class_ir ->
  Template.class_t ->
  Isa.Code.t * Busstop.table * Opt.edit list
