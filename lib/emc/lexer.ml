type token =
  | INT of int32
  | REAL of float
  | STRING of string
  | IDENT of string
  | KOBJECT
  | KEND
  | KVAR
  | KATTACHED
  | KOPERATION
  | KMONITOR
  | KIF
  | KTHEN
  | KELSEIF
  | KELSE
  | KLOOP
  | KEXIT
  | KWHEN
  | KWHILE
  | KRETURN
  | KMOVE
  | KTO
  | KNEW
  | KSELF
  | KTRUE
  | KFALSE
  | KNIL
  | KAND
  | KOR
  | KNOT
  | KPRINT
  | KLOCATE
  | KTHISNODE
  | KTIMENOW
  | KVECTOR
  | KPROCESS
  | KCONDITION
  | KWAIT
  | KSIGNAL
  | KNOTIFY
  | KNOTIFYALL
  | KTIMEOUT
  | LARROW
  | RARROW
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LE
  | GE
  | LT
  | GT
  | EOF

let keywords =
  [
    ("object", KOBJECT);
    ("end", KEND);
    ("var", KVAR);
    ("attached", KATTACHED);
    ("operation", KOPERATION);
    ("monitor", KMONITOR);
    ("if", KIF);
    ("then", KTHEN);
    ("elseif", KELSEIF);
    ("else", KELSE);
    ("loop", KLOOP);
    ("exit", KEXIT);
    ("when", KWHEN);
    ("while", KWHILE);
    ("return", KRETURN);
    ("move", KMOVE);
    ("to", KTO);
    ("new", KNEW);
    ("self", KSELF);
    ("true", KTRUE);
    ("false", KFALSE);
    ("nil", KNIL);
    ("and", KAND);
    ("or", KOR);
    ("not", KNOT);
    ("print", KPRINT);
    ("locate", KLOCATE);
    ("thisnode", KTHISNODE);
    ("timenow", KTIMENOW);
    ("vector", KVECTOR);
    ("process", KPROCESS);
    ("condition", KCONDITION);
    ("wait", KWAIT);
    ("signal", KSIGNAL);
    ("notify", KNOTIFY);
    ("notifyall", KNOTIFYALL);
    ("timeout", KTIMEOUT);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let here st = { Ast.line = st.line; Ast.col = st.col }
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let rec skip_blank st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_blank st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_blank st
  | Some _ | None -> ()

let lex_number st pos =
  let start = st.pos in
  while
    match peek st with
    | Some c -> is_digit c
    | None -> false
  do
    advance st
  done;
  let is_real =
    match peek st, peek2 st with
    | Some '.', Some c when is_digit c -> true
    | _, _ -> false
  in
  if is_real then begin
    advance st;
    while
      match peek st with
      | Some c -> is_digit c
      | None -> false
    do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    (REAL (float_of_string text), pos)
  end
  else
    let text = String.sub st.src start (st.pos - start) in
    match Int32.of_string_opt text with
    | Some v -> (INT v, pos)
    | None -> Diag.error pos "integer literal %s out of range" text

let lex_string st pos =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> Diag.error pos "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some ('"' | '\\') ->
        Buffer.add_char buf st.src.[st.pos];
        advance st;
        go ()
      | Some c -> Diag.error (here st) "unknown escape \\%c" c
      | None -> Diag.error pos "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  (STRING (Buffer.contents buf), pos)

let lex_ident st pos =
  let start = st.pos in
  while
    match peek st with
    | Some c -> is_ident_char c
    | None -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text keywords with
  | Some kw -> (kw, pos)
  | None -> (IDENT text, pos)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_blank st;
    let pos = here st in
    match peek st with
    | None -> List.rev ((EOF, pos) :: acc)
    | Some c when is_digit c -> go (lex_number st pos :: acc)
    | Some '"' -> go (lex_string st pos :: acc)
    | Some c when is_ident_start c -> go (lex_ident st pos :: acc)
    | Some c ->
      let two tok =
        advance st;
        advance st;
        (tok, pos)
      in
      let one tok =
        advance st;
        (tok, pos)
      in
      let t =
        match c, peek2 st with
        | '<', Some '-' -> two LARROW
        | '-', Some '>' -> two RARROW
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '=', Some '=' -> two EQEQ
        | '!', Some '=' -> two NEQ
        | '<', _ -> one LT
        | '>', _ -> one GT
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | ',', _ -> one COMMA
        | ':', _ -> one COLON
        | '.', _ -> one DOT
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '/', _ -> one SLASH
        | '%', _ -> one PERCENT
        | _, _ -> Diag.error pos "unexpected character %C" c
      in
      go (t :: acc)
  in
  go []

let token_name = function
  | INT v -> Printf.sprintf "integer %ld" v
  | REAL v -> Printf.sprintf "real %g" v
  | STRING s -> Printf.sprintf "string %S" s
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KOBJECT -> "'object'"
  | KEND -> "'end'"
  | KVAR -> "'var'"
  | KATTACHED -> "'attached'"
  | KOPERATION -> "'operation'"
  | KMONITOR -> "'monitor'"
  | KIF -> "'if'"
  | KTHEN -> "'then'"
  | KELSEIF -> "'elseif'"
  | KELSE -> "'else'"
  | KLOOP -> "'loop'"
  | KEXIT -> "'exit'"
  | KWHEN -> "'when'"
  | KWHILE -> "'while'"
  | KRETURN -> "'return'"
  | KMOVE -> "'move'"
  | KTO -> "'to'"
  | KNEW -> "'new'"
  | KSELF -> "'self'"
  | KTRUE -> "'true'"
  | KFALSE -> "'false'"
  | KNIL -> "'nil'"
  | KAND -> "'and'"
  | KOR -> "'or'"
  | KNOT -> "'not'"
  | KPRINT -> "'print'"
  | KLOCATE -> "'locate'"
  | KTHISNODE -> "'thisnode'"
  | KTIMENOW -> "'timenow'"
  | KVECTOR -> "'vector'"
  | KPROCESS -> "'process'"
  | KCONDITION -> "'condition'"
  | KWAIT -> "'wait'"
  | KSIGNAL -> "'signal'"
  | KNOTIFY -> "'notify'"
  | KNOTIFYALL -> "'notifyall'"
  | KTIMEOUT -> "'timeout'"
  | LARROW -> "'<-'"
  | RARROW -> "'->'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | COLON -> "':'"
  | DOT -> "'.'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | EOF -> "end of input"
