type class_info = {
  ci_index : int;
  ci_name : string;
  ci_fields : (string * Ast.typ) array;
  ci_attached : bool array;
  ci_methods : method_sig array;
  ci_has_initially : bool;
  ci_has_process : bool;
  ci_conditions : string array;
}

and method_sig = {
  m_index : int;
  m_name : string;
  m_monitored : bool;
  m_params : (string * Ast.typ) list;
  m_result : Ast.typ option;
}

type var_ref =
  | Vparam of int
  | Vresult
  | Vlocal of int
  | Vfield of int

type texpr = {
  te_t : Ast.typ;
  te_pos : Ast.pos;
  te_d : texpr_desc;
}

and texpr_desc =
  | TEint of int32
  | TEreal of float
  | TEbool of bool
  | TEstr of string
  | TEnil
  | TEvar of var_ref * string
  | TEself
  | TEbin of Ast.binop * texpr * texpr
  | TEun of Ast.unop * texpr
  | TEinvoke of texpr * class_info * method_sig * texpr list
  | TEnew of class_info * texpr list
  | TEvec_new of Ast.typ * texpr  (** element type, length *)
  | TEindex of texpr * texpr
  | TEveclen of texpr
  | TElocate of texpr
  | TEthisnode
  | TEtimenow
  | TEcvt_int_to_real of texpr

type tstmt =
  | TSdecl of int * texpr
  | TSassign of var_ref * texpr
  | TSindex_assign of texpr * texpr * texpr
  | TSexpr of texpr
  | TSif of (texpr * tstmt list) list * tstmt list
  | TSloop of tstmt list
  | TSexit of texpr option
  | TSreturn
  | TSmove of texpr * texpr
  | TSprint of texpr list
  | TSwait of int * texpr option
  | TSsignal of int
  | TSnotifyall of int

type top = {
  t_sig : method_sig;
  t_locals : (string * Ast.typ) array;
  t_body : tstmt list;
}

type tclass = {
  tc_info : class_info;
  tc_field_inits : texpr array;
  tc_ops : top array;
}

type tprog = {
  tp_classes : tclass array;
}

let max_params = 5

(* Class table ----------------------------------------------------------- *)

let build_class_info index (c : Ast.class_decl) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (f : Ast.field_decl) ->
      if Hashtbl.mem seen f.Ast.f_name then
        Diag.error f.Ast.f_pos "duplicate field %s in object %s" f.Ast.f_name c.Ast.c_name;
      Hashtbl.replace seen f.Ast.f_name ())
    c.Ast.c_fields;
  let fields =
    Array.of_list (List.map (fun (f : Ast.field_decl) -> (f.Ast.f_name, f.Ast.f_type)) c.Ast.c_fields)
  in
  let attached =
    Array.of_list (List.map (fun (f : Ast.field_decl) -> f.Ast.f_attached) c.Ast.c_fields)
  in
  let seen_ops = Hashtbl.create 8 in
  let declared =
      (List.mapi
         (fun i (o : Ast.op_decl) ->
           if Hashtbl.mem seen_ops o.Ast.op_name then
             Diag.error o.Ast.op_pos "duplicate operation %s in object %s" o.Ast.op_name
               c.Ast.c_name;
           Hashtbl.replace seen_ops o.Ast.op_name ();
           if List.length o.Ast.op_params > max_params then
             Diag.error o.Ast.op_pos "operation %s has more than %d parameters"
               o.Ast.op_name max_params;
           let result =
             match o.Ast.op_results with
             | [] -> None
             | [ (_, t) ] -> Some t
             | _ :: _ :: _ ->
               Diag.error o.Ast.op_pos "operation %s has more than one result" o.Ast.op_name
           in
           {
             m_index = i;
             m_name = o.Ast.op_name;
             m_monitored = o.Ast.op_monitored;
             m_params = o.Ast.op_params;
             m_result = result;
           })
         c.Ast.c_ops)
  in
  (* the process section compiles as an ordinary parameterless operation
     under a name no source identifier can collide with *)
  let methods =
    match c.Ast.c_process with
    | None -> Array.of_list declared
    | Some _ ->
      Array.of_list
        (declared
        @ [
            {
              m_index = List.length declared;
              m_name = "$process";
              m_monitored = false;
              m_params = [];
              m_result = None;
            };
          ])
  in
  {
    ci_index = index;
    ci_name = c.Ast.c_name;
    ci_fields = fields;
    ci_attached = attached;
    ci_methods = methods;
    ci_has_initially = Array.exists (fun m -> String.equal m.m_name "initially") methods;
    ci_has_process = c.Ast.c_process <> None;
    ci_conditions = Array.of_list (List.map snd c.Ast.c_conditions);
  }

(* Environment ------------------------------------------------------------ *)

type env = {
  classes : (string, class_info) Hashtbl.t;
  cls : class_info;  (* enclosing class *)
  params : (string * Ast.typ) list;
  result : (string * Ast.typ) option;
  mutable locals : (string * Ast.typ) list;  (* declaration order *)
  mutable n_locals : int;
  mutable loop_depth : int;
  in_monitor : bool;
}

let lookup_class env pos name =
  match Hashtbl.find_opt env.classes name with
  | Some ci -> ci
  | None -> Diag.error pos "unknown object class %s" name

let rec check_valid_type env pos t =
  match t with
  | Ast.Tobj name -> ignore (lookup_class env pos name)
  | Ast.Tvec e -> check_valid_type env pos e
  | Ast.Tint | Ast.Treal | Ast.Tbool | Ast.Tstring | Ast.Tnil -> ()

let index_of_assoc name l =
  let rec go i = function
    | [] -> None
    | (n, t) :: rest -> if String.equal n name then Some (i, t) else go (i + 1) rest
  in
  go 0 l

let resolve_var env pos name =
  (* locals shadow params/results shadow fields; env.locals is kept in
     declaration order, matching Vlocal indices *)
  match index_of_assoc name env.locals with
  | Some (i, t) -> (Vlocal i, t)
  | None -> (
    match index_of_assoc name env.params with
    | Some (i, t) -> (Vparam i, t)
    | None -> (
      match env.result with
      | Some (rn, rt) when String.equal rn name -> (Vresult, rt)
      | Some _ | None -> (
        match
          Array.find_index (fun (fn, _) -> String.equal fn name) env.cls.ci_fields
        with
        | Some i -> (Vfield i, snd env.cls.ci_fields.(i))
        | None -> Diag.error pos "unknown variable %s" name)))

(* Typing ----------------------------------------------------------------- *)

let is_numeric = function
  | Ast.Tint | Ast.Treal -> true
  | Ast.Tbool | Ast.Tstring | Ast.Tobj _ | Ast.Tvec _ | Ast.Tnil -> false

let is_ref = function
  | Ast.Tobj _ | Ast.Tnil -> true
  | Ast.Tint | Ast.Treal | Ast.Tbool | Ast.Tstring | Ast.Tvec _ -> false

let promote e =
  match e.te_t with
  | Ast.Tint -> { te_t = Ast.Treal; te_pos = e.te_pos; te_d = TEcvt_int_to_real e }
  | Ast.Treal | Ast.Tbool | Ast.Tstring | Ast.Tobj _ | Ast.Tvec _ | Ast.Tnil -> e

(* [assignable ~target actual]: may a value of type [actual] be stored in a
   slot of type [target]?  nil is assignable to any object reference. *)
let assignable ~target actual =
  Ast.typ_equal target actual
  ||
  match target, actual with
  | (Ast.Tobj _ | Ast.Tvec _), Ast.Tnil -> true
  | _, _ -> false

let coerce env pos ~target e =
  ignore env;
  if assignable ~target e.te_t then e
  else if Ast.typ_equal target Ast.Treal && Ast.typ_equal e.te_t Ast.Tint then promote e
  else
    Diag.error pos "type mismatch: expected %s but found %s" (Ast.typ_name target)
      (Ast.typ_name e.te_t)

let rec check_expr env (e : Ast.expr) : texpr =
  let pos = e.Ast.e_pos in
  let mk t d = { te_t = t; te_pos = pos; te_d = d } in
  match e.Ast.e_desc with
  | Ast.Eint v -> mk Ast.Tint (TEint v)
  | Ast.Ereal v -> mk Ast.Treal (TEreal v)
  | Ast.Ebool v -> mk Ast.Tbool (TEbool v)
  | Ast.Estr v -> mk Ast.Tstring (TEstr v)
  | Ast.Enil -> mk Ast.Tnil TEnil
  | Ast.Eself -> mk (Ast.Tobj env.cls.ci_name) TEself
  | Ast.Ethisnode -> mk Ast.Tint TEthisnode
  | Ast.Etimenow -> mk Ast.Tint TEtimenow
  | Ast.Evar name ->
    let vr, t = resolve_var env pos name in
    mk t (TEvar (vr, name))
  | Ast.Elocate obj ->
    let tobj = check_expr env obj in
    if not (is_ref tobj.te_t) then
      Diag.error pos "locate expects an object reference, found %s" (Ast.typ_name tobj.te_t);
    mk Ast.Tint (TElocate tobj)
  | Ast.Eun (Ast.Uneg, x) ->
    let tx = check_expr env x in
    if not (is_numeric tx.te_t) then
      Diag.error pos "unary '-' expects int or real, found %s" (Ast.typ_name tx.te_t);
    mk tx.te_t (TEun (Ast.Uneg, tx))
  | Ast.Eun (Ast.Unot, x) ->
    let tx = check_expr env x in
    if not (Ast.typ_equal tx.te_t Ast.Tbool) then
      Diag.error pos "'not' expects bool, found %s" (Ast.typ_name tx.te_t);
    mk Ast.Tbool (TEun (Ast.Unot, tx))
  | Ast.Ebin (op, a, b) -> check_bin env pos op a b
  | Ast.Enew (cname, args) ->
    let ci = lookup_class env pos cname in
    let targs = List.map (check_expr env) args in
    let targs =
      if ci.ci_has_initially then begin
        let init =
          match
            Array.find_opt (fun m -> String.equal m.m_name "initially") ci.ci_methods
          with
          | Some m -> m
          | None -> assert false
        in
        if List.length targs <> List.length init.m_params then
          Diag.error pos "new %s: initially expects %d argument(s), given %d" cname
            (List.length init.m_params) (List.length targs);
        List.map2 (fun (_, pt) a -> coerce env pos ~target:pt a) init.m_params targs
      end
      else if targs <> [] then
        Diag.error pos "new %s: object has no initially operation but arguments were given"
          cname
      else []
    in
    mk (Ast.Tobj cname) (TEnew (ci, targs))
  | Ast.Evec_new (elem_ty, len) ->
    check_valid_type env pos elem_ty;
    let tlen = coerce env pos ~target:Ast.Tint (check_expr env len) in
    mk (Ast.Tvec elem_ty) (TEvec_new (elem_ty, tlen))
  | Ast.Eindex (vec, idx) -> (
    let tvec = check_expr env vec in
    let tidx = coerce env pos ~target:Ast.Tint (check_expr env idx) in
    match tvec.te_t with
    | Ast.Tvec elem -> mk elem (TEindex (tvec, tidx))
    | other -> Diag.error pos "cannot index a value of type %s" (Ast.typ_name other))
  | Ast.Einvoke (target, "size", []) when
      (match (check_expr env target).te_t with
      | Ast.Tvec _ -> true
      | _ -> false) ->
    let tvec = check_expr env target in
    mk Ast.Tint (TEveclen tvec)
  | Ast.Einvoke (target, opname, args) -> (
    let ttarget = check_expr env target in
    match ttarget.te_t with
    | Ast.Tobj cname -> (
      let ci = lookup_class env pos cname in
      match Array.find_opt (fun m -> String.equal m.m_name opname) ci.ci_methods with
      | None -> Diag.error pos "object %s has no operation %s" cname opname
      | Some msig ->
        if List.length args <> List.length msig.m_params then
          Diag.error pos "%s.%s expects %d argument(s), given %d" cname opname
            (List.length msig.m_params) (List.length args);
        let targs =
          List.map2
            (fun (_, pt) a -> coerce env pos ~target:pt (check_expr env a))
            msig.m_params args
        in
        let rt =
          match msig.m_result with
          | Some t -> t
          | None -> Ast.Tnil
        in
        mk rt (TEinvoke (ttarget, ci, msig, targs)))
    | Ast.Tint | Ast.Treal | Ast.Tbool | Ast.Tstring | Ast.Tvec _ | Ast.Tnil ->
      Diag.error pos "cannot invoke %s on a value of type %s" opname
        (Ast.typ_name ttarget.te_t))

and check_bin env pos op a b =
  let ta = check_expr env a and tb = check_expr env b in
  let mk t d = { te_t = t; te_pos = pos; te_d = d } in
  let numeric_pair () =
    match ta.te_t, tb.te_t with
    | Ast.Tint, Ast.Tint -> (ta, tb, Ast.Tint)
    | Ast.Treal, Ast.Treal -> (ta, tb, Ast.Treal)
    | Ast.Tint, Ast.Treal -> (promote ta, tb, Ast.Treal)
    | Ast.Treal, Ast.Tint -> (ta, promote tb, Ast.Treal)
    | _, _ ->
      Diag.error pos "operator %s expects numeric operands, found %s and %s"
        (Ast.binop_name op) (Ast.typ_name ta.te_t) (Ast.typ_name tb.te_t)
  in
  match op with
  | Ast.Badd
    when Ast.typ_equal ta.te_t Ast.Tstring && Ast.typ_equal tb.te_t Ast.Tstring ->
    mk Ast.Tstring (TEbin (op, ta, tb))
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv ->
    let ta, tb, t = numeric_pair () in
    mk t (TEbin (op, ta, tb))
  | Ast.Bmod ->
    if Ast.typ_equal ta.te_t Ast.Tint && Ast.typ_equal tb.te_t Ast.Tint then
      mk Ast.Tint (TEbin (op, ta, tb))
    else Diag.error pos "'%%' expects int operands"
  | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
    let ta, tb, _ = numeric_pair () in
    mk Ast.Tbool (TEbin (op, ta, tb))
  | Ast.Beq | Ast.Bne ->
    let ok =
      (is_numeric ta.te_t && is_numeric tb.te_t)
      || (Ast.typ_equal ta.te_t Ast.Tbool && Ast.typ_equal tb.te_t Ast.Tbool)
      || (Ast.typ_equal ta.te_t Ast.Tstring && Ast.typ_equal tb.te_t Ast.Tstring)
      || (is_ref ta.te_t && is_ref tb.te_t)
    in
    if not ok then
      Diag.error pos "cannot compare %s with %s" (Ast.typ_name ta.te_t)
        (Ast.typ_name tb.te_t);
    if is_numeric ta.te_t && is_numeric tb.te_t then
      let ta, tb, _ = numeric_pair () in
      mk Ast.Tbool (TEbin (op, ta, tb))
    else mk Ast.Tbool (TEbin (op, ta, tb))
  | Ast.Band | Ast.Bor ->
    if Ast.typ_equal ta.te_t Ast.Tbool && Ast.typ_equal tb.te_t Ast.Tbool then
      mk Ast.Tbool (TEbin (op, ta, tb))
    else Diag.error pos "'%s' expects bool operands" (Ast.binop_name op)

let rec check_stmt env (s : Ast.stmt) : tstmt =
  let pos = s.Ast.s_pos in
  match s.Ast.s_desc with
  | Ast.Svar (name, ty, init) ->
    check_valid_type env pos ty;
    if List.exists (fun (n, _) -> String.equal n name) env.locals then
      Diag.error pos "variable %s is already declared in this operation" name;
    if index_of_assoc name env.params <> None then
      Diag.error pos "variable %s shadows a parameter" name;
    (match env.result with
    | Some (rn, _) when String.equal rn name ->
      Diag.error pos "variable %s shadows the result" name
    | Some _ | None -> ());
    let tinit = coerce env pos ~target:ty (check_expr env init) in
    let idx = env.n_locals in
    env.locals <- env.locals @ [ (name, ty) ];
    env.n_locals <- env.n_locals + 1;
    TSdecl (idx, tinit)
  | Ast.Sassign (name, e) ->
    let vr, t = resolve_var env pos name in
    let te = coerce env pos ~target:t (check_expr env e) in
    TSassign (vr, te)
  | Ast.Sindex_assign (vec, idx, e) -> (
    let tvec = check_expr env vec in
    let tidx = coerce env pos ~target:Ast.Tint (check_expr env idx) in
    match tvec.te_t with
    | Ast.Tvec elem ->
      let te = coerce env pos ~target:elem (check_expr env e) in
      TSindex_assign (tvec, tidx, te)
    | other -> Diag.error pos "cannot index a value of type %s" (Ast.typ_name other))
  | Ast.Sexpr e -> (
    let te = check_expr env e in
    match te.te_d with
    | TEinvoke (_, _, _, _) | TEnew (_, _) -> TSexpr te
    | _ -> Diag.error pos "only invocations may be used as statements")
  | Ast.Sif (arms, els) ->
    let tarms =
      List.map
        (fun (cond, body) ->
          let tc = check_expr env cond in
          if not (Ast.typ_equal tc.te_t Ast.Tbool) then
            Diag.error cond.Ast.e_pos "if condition must be bool, found %s"
              (Ast.typ_name tc.te_t);
          (tc, List.map (check_stmt env) body))
        arms
    in
    TSif (tarms, List.map (check_stmt env) els)
  | Ast.Sloop body ->
    env.loop_depth <- env.loop_depth + 1;
    let tbody = List.map (check_stmt env) body in
    env.loop_depth <- env.loop_depth - 1;
    TSloop tbody
  | Ast.Swhile (cond, body) ->
    (* while c ... end  ==  loop exit when not c; ... end loop *)
    let tc = check_expr env cond in
    if not (Ast.typ_equal tc.te_t Ast.Tbool) then
      Diag.error cond.Ast.e_pos "while condition must be bool, found %s"
        (Ast.typ_name tc.te_t);
    env.loop_depth <- env.loop_depth + 1;
    let tbody = List.map (check_stmt env) body in
    env.loop_depth <- env.loop_depth - 1;
    let notc = { te_t = Ast.Tbool; te_pos = cond.Ast.e_pos; te_d = TEun (Ast.Unot, tc) } in
    TSloop (TSexit (Some notc) :: tbody)
  | Ast.Sexit cond ->
    if env.loop_depth = 0 then Diag.error pos "'exit' outside of a loop";
    let tc =
      Option.map
        (fun c ->
          let t = check_expr env c in
          if not (Ast.typ_equal t.te_t Ast.Tbool) then
            Diag.error pos "'exit when' condition must be bool, found %s"
              (Ast.typ_name t.te_t);
          t)
        cond
    in
    TSexit tc
  | Ast.Sreturn -> TSreturn
  | Ast.Smove (obj, node) ->
    let tobj = check_expr env obj in
    if not (is_ref tobj.te_t) then
      Diag.error pos "move expects an object reference, found %s" (Ast.typ_name tobj.te_t);
    let tnode = coerce env pos ~target:Ast.Tint (check_expr env node) in
    TSmove (tobj, tnode)
  | Ast.Sprint args -> TSprint (List.map (check_expr env) args)
  | Ast.Swait (name, _) | Ast.Ssignal name | Ast.Snotifyall name -> (
    if not env.in_monitor then
      Diag.error pos "wait/signal may only be used inside monitored operations";
    match
      Array.find_index (fun c -> String.equal c name) env.cls.ci_conditions
    with
    | Some i -> (
      match s.Ast.s_desc with
      | Ast.Swait (_, timeout) ->
        let ttimeout =
          Option.map
            (fun e -> coerce env pos ~target:Ast.Tint (check_expr env e))
            timeout
        in
        TSwait (i, ttimeout)
      | Ast.Snotifyall _ -> TSnotifyall i
      | _ -> TSsignal i)
    | None -> Diag.error pos "object %s has no condition %s" env.cls.ci_name name)

let literal_only (e : Ast.expr) =
  match e.Ast.e_desc with
  | Ast.Eint _ | Ast.Ereal _ | Ast.Ebool _ | Ast.Estr _ | Ast.Enil -> true
  | _ -> false

let check_class classes (tcd : Ast.class_decl) ci =
  let field_inits =
    Array.of_list
      (List.map
         (fun (f : Ast.field_decl) ->
           if not (literal_only f.Ast.f_init) then
             Diag.error f.Ast.f_pos
               "field %s: initialisers must be literals (use an initially operation)"
               f.Ast.f_name;
           let env =
             {
               classes;
               cls = ci;
               params = [];
               result = None;
               locals = [];
               n_locals = 0;
               loop_depth = 0;
               in_monitor = false;
             }
           in
           coerce env f.Ast.f_pos ~target:f.Ast.f_type (check_expr env f.Ast.f_init))
         tcd.Ast.c_fields)
  in
  let check_one msig params result_decl body_ast =
    let env =
      {
        classes;
        cls = ci;
        params;
        result = result_decl;
        locals = [];
        n_locals = 0;
        loop_depth = 0;
        in_monitor = msig.m_monitored;
      }
    in
    List.iter (fun (_, t) -> check_valid_type env tcd.Ast.c_pos t) params;
    (match result_decl with
    | Some (_, t) -> check_valid_type env tcd.Ast.c_pos t
    | None -> ());
    let body = List.map (check_stmt env) body_ast in
    { t_sig = msig; t_locals = Array.of_list env.locals; t_body = body }
  in
  let declared =
    List.mapi
      (fun i (o : Ast.op_decl) ->
        let result =
          match o.Ast.op_results with
          | [] -> None
          | (rn, rt) :: _ -> Some (rn, rt)
        in
        check_one ci.ci_methods.(i) o.Ast.op_params result o.Ast.op_body)
      tcd.Ast.c_ops
  in
  let ops =
    match tcd.Ast.c_process with
    | None -> Array.of_list declared
    | Some body ->
      let msig = ci.ci_methods.(Array.length ci.ci_methods - 1) in
      Array.of_list (declared @ [ check_one msig [] None body ])
  in
  { tc_info = ci; tc_field_inits = field_inits; tc_ops = ops }

let check (prog : Ast.program) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : Ast.class_decl) ->
      if Hashtbl.mem seen c.Ast.c_name then
        Diag.error c.Ast.c_pos "duplicate object class %s" c.Ast.c_name;
      Hashtbl.replace seen c.Ast.c_name ())
    prog.Ast.prog_classes;
  let infos = List.mapi build_class_info prog.Ast.prog_classes in
  let classes = Hashtbl.create 8 in
  List.iter (fun ci -> Hashtbl.replace classes ci.ci_name ci) infos;
  let tclasses =
    List.map2 (fun cd ci -> check_class classes cd ci) prog.Ast.prog_classes infos
  in
  { tp_classes = Array.of_list tclasses }

let find_class tp name =
  Array.find_opt (fun tc -> String.equal tc.tc_info.ci_name name) tp.tp_classes
