type label = int
type temp = int

type entity =
  | Evar of int
  | Etemp of temp

type arith_ty =
  | Aint
  | Areal

type builtin =
  | Bprint_int
  | Bprint_real
  | Bprint_bool
  | Bprint_str
  | Bprint_ref
  | Bprint_nl
  | Blocate
  | Bthisnode
  | Btimenow
  | Bmove
  | Bsconcat
  | Bseq
  | Bvec_new
  | Bbounds
  | Bstart_process
  | Bcond_wait
  | Bcond_signal
  | Bcond_wait_timed
  | Bcond_notify_all

type stop_kind =
  | Sk_invoke of {
      argc : int;
      has_result : bool;
      callee_class : int;
      callee_method : int;
    }
  | Sk_new of { class_index : int }
  | Sk_builtin of {
      bi : builtin;
      argc : int;
      has_result : bool;
    }
  | Sk_loop
  | Sk_mon_enter
  | Sk_mon_dequeue
  | Sk_mon_wake

type stop_rec = {
  sr_id : int;
  sr_op : int;
  sr_kind : stop_kind;
  mutable sr_live : (entity * Ast.typ) list;
}

type instr =
  | Iconst_int of temp * int32
  | Iconst_real of temp * float
  | Iconst_bool of temp * bool
  | Iconst_str of temp * int
  | Iconst_nil of temp
  | Icopy of temp * temp
  | Iload_var of temp * int
  | Istore_var of int * temp
  | Iload_field of temp * int
  | Istore_field of int * temp
  | Ibin of {
      dst : temp;
      op : Isa.Insn.binop;
      ty : arith_ty;
      a : temp;
      b : temp;
    }
  | Icmp of {
      dst : temp;
      op : Isa.Insn.cmp;
      ty : arith_ty;
      a : temp;
      b : temp;
    }
  | Ineg of {
      dst : temp;
      ty : arith_ty;
      a : temp;
    }
  | Inot of {
      dst : temp;
      a : temp;
    }
  | Icvt_int_real of {
      dst : temp;
      a : temp;
    }
  | Iinvoke of {
      dst : temp option;
      target : temp;
      class_index : int;
      method_index : int;
      method_name : string;
      args : temp list;
      stop : int;
    }
  | Inew of {
      dst : temp;
      class_index : int;
      stop : int;
    }
  | Ibuiltin of {
      dst : temp option;
      bi : builtin;
      args : temp list;
      stop : int;
    }
  | Ivec_get of {
      dst : temp;
      vec : temp;
      idx : temp;
      stop : int;  (** the bounds-failure stop *)
    }
  | Ivec_set of {
      vec : temp;
      idx : temp;
      src : temp;
      stop : int;
    }
  | Ivec_len of {
      dst : temp;
      vec : temp;
    }
  | Imon_enter of { stop : int }
  | Imon_exit of {
      dequeue_stop : int;
      wake_stop : int;
    }

type terminator =
  | Tjump of label
  | Tcond of {
      c : temp;
      if_true : label;
      if_false : label;
    }
  | Treturn
  | Tloop of {
      target : label;
      stop : int;
    }

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type var_kind =
  | Kself
  | Kparam of int
  | Kresult
  | Klocal of int

type var_def = {
  vd_name : string;
  vd_type : Ast.typ;
  vd_kind : var_kind;
}

type op_ir = {
  oi_name : string;
  oi_index : int;
  oi_monitored : bool;
  oi_vars : var_def array;
  oi_nparams : int;
  oi_result : int option;
  oi_temp_types : Ast.typ array;
  oi_blocks : block array;
  oi_stops : stop_rec array;
}

type field_init =
  | Fint of int32
  | Freal of float
  | Fbool of bool
  | Fstr of string
  | Fnil

type class_ir = {
  cl_name : string;
  cl_index : int;
  cl_fields : (string * Ast.typ) array;
  cl_attached : bool array;
  cl_field_inits : field_init array;
  cl_conditions : string array;
  cl_strings : string array;
  cl_ops : op_ir array;
  cl_nstops : int;
  cl_has_initially : bool;
}

type program_ir = {
  pr_name : string;
  pr_classes : class_ir array;
}

let is_pointer_type = function
  | Ast.Tstring | Ast.Tobj _ | Ast.Tvec _ | Ast.Tnil -> true
  | Ast.Tint | Ast.Treal | Ast.Tbool -> false

let builtin_name = function
  | Bprint_int -> "print_int"
  | Bprint_real -> "print_real"
  | Bprint_bool -> "print_bool"
  | Bprint_str -> "print_str"
  | Bprint_ref -> "print_ref"
  | Bprint_nl -> "print_nl"
  | Blocate -> "locate"
  | Bthisnode -> "thisnode"
  | Btimenow -> "timenow"
  | Bmove -> "move"
  | Bsconcat -> "sconcat"
  | Bseq -> "seq"
  | Bvec_new -> "vec_new"
  | Bbounds -> "bounds"
  | Bstart_process -> "start_process"
  | Bcond_wait -> "cond_wait"
  | Bcond_signal -> "cond_signal"
  | Bcond_wait_timed -> "cond_wait_timed"
  | Bcond_notify_all -> "cond_notify_all"

let defs = function
  | Iconst_int (t, _)
  | Iconst_real (t, _)
  | Iconst_bool (t, _)
  | Iconst_str (t, _)
  | Iconst_nil t
  | Icopy (t, _)
  | Iload_var (t, _)
  | Iload_field (t, _) -> Some t
  | Ibin { dst; _ } | Icmp { dst; _ } | Ineg { dst; _ } | Inot { dst; _ }
  | Icvt_int_real { dst; _ } -> Some dst
  | Iinvoke { dst; _ } | Ibuiltin { dst; _ } -> dst
  | Inew { dst; _ } -> Some dst
  | Ivec_get { dst; _ } | Ivec_len { dst; _ } -> Some dst
  | Istore_var (_, _) | Istore_field (_, _) | Ivec_set _ | Imon_enter _ | Imon_exit _ ->
    None

let uses = function
  | Iconst_int (_, _)
  | Iconst_real (_, _)
  | Iconst_bool (_, _)
  | Iconst_str (_, _)
  | Iconst_nil _
  | Iload_var (_, _)
  | Iload_field (_, _)
  | Inew _ | Imon_enter _ | Imon_exit _ -> []
  | Icopy (_, s) | Istore_var (_, s) | Istore_field (_, s) -> [ s ]
  | Ibin { a; b; _ } | Icmp { a; b; _ } -> [ a; b ]
  | Ivec_get { vec; idx; _ } -> [ vec; idx ]
  | Ivec_set { vec; idx; src; _ } -> [ vec; idx; src ]
  | Ivec_len { vec; _ } -> [ vec ]
  | Ineg { a; _ } | Inot { a; _ } | Icvt_int_real { a; _ } -> [ a ]
  | Iinvoke { target; args; _ } -> target :: args
  | Ibuiltin { args; _ } -> args

let stop_of_instr = function
  | Iinvoke { stop; _ } | Inew { stop; _ } | Ibuiltin { stop; _ } | Imon_enter { stop }
  | Ivec_get { stop; _ } | Ivec_set { stop; _ } -> [ stop ]
  | Imon_exit { dequeue_stop; wake_stop } -> [ dequeue_stop; wake_stop ]
  | Iconst_int (_, _)
  | Iconst_real (_, _)
  | Iconst_bool (_, _)
  | Iconst_str (_, _)
  | Iconst_nil _
  | Icopy (_, _)
  | Iload_var (_, _)
  | Istore_var (_, _)
  | Iload_field (_, _)
  | Istore_field (_, _)
  | Ibin _ | Icmp _ | Ineg _ | Inot _ | Icvt_int_real _ | Ivec_len _ -> []

let term_uses = function
  | Tcond { c; _ } -> [ c ]
  | Tjump _ | Treturn | Tloop _ -> []

let successors = function
  | Tjump l -> [ l ]
  | Tcond { if_true; if_false; _ } -> [ if_true; if_false ]
  | Treturn -> []
  | Tloop { target; _ } -> [ target ]

let find_stop op id =
  match Array.find_opt (fun s -> s.sr_id = id) op.oi_stops with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Ir.find_stop: no stop %d in %s" id op.oi_name)
