(** Machine-independent intermediate representation.

    The IR is a control-flow graph of basic blocks over an unbounded set
    of temporaries, with variables (parameters, the result, locals — and
    the implicit [self] at index 0) as explicit memory-like entities.

    Crucially, {e bus stops are allocated here}, before any
    architecture-specific work: every invocation, allocation, builtin
    system call, loop bottom, and monitor entry/exit receives a stop id,
    dense per class, in a deterministic order.  Each backend then emits a
    mapping from its own program-counter values to these ids, which makes
    the per-architecture bus-stop tables isomorphic by construction —
    the property section 3.3 of the paper requires. *)

type label = int
type temp = int

type entity =
  | Evar of int
  | Etemp of temp

type arith_ty =
  | Aint
  | Areal

type builtin =
  | Bprint_int
  | Bprint_real
  | Bprint_bool
  | Bprint_str
  | Bprint_ref
  | Bprint_nl
  | Blocate
  | Bthisnode
  | Btimenow
  | Bmove  (** [move obj to node] *)
  | Bsconcat
  | Bseq  (** string equality *)
  | Bvec_new
      (** allocate a vector: args are the element-kind code and the
          length; result is the block address *)
  | Bbounds  (** vector index out of range: aborts the thread *)
  | Bstart_process
      (** start the object's process section as a new thread (emitted by
          [new] after [initially] completes) *)
  | Bcond_wait  (** block on a monitor condition (releases the monitor) *)
  | Bcond_signal
  | Bcond_wait_timed
      (** as [Bcond_wait] plus a timeout argument in virtual microseconds *)
  | Bcond_notify_all  (** move every condition waiter to the entry queue *)
      (** move one condition waiter to the monitor entry queue (Mesa) *)

type stop_kind =
  | Sk_invoke of {
      argc : int;  (** declared arguments, excluding self *)
      has_result : bool;
      callee_class : int;  (** class index of the static target type *)
      callee_method : int;
    }
  | Sk_new of { class_index : int }
  | Sk_builtin of {
      bi : builtin;
      argc : int;
      has_result : bool;
    }
  | Sk_loop
  | Sk_mon_enter
  | Sk_mon_dequeue
      (** monitor-exit queue unlink: a system call everywhere except the
          VAX, where REMQUE does it in one instruction and the stop is
          exit-only *)
  | Sk_mon_wake

type stop_rec = {
  sr_id : int;  (** class-global bus stop number *)
  sr_op : int;  (** operation index within the class *)
  sr_kind : stop_kind;
  mutable sr_live : (entity * Ast.typ) list;
      (** entities whose values are live across this stop (liveness pass) *)
}

type instr =
  | Iconst_int of temp * int32
  | Iconst_real of temp * float
  | Iconst_bool of temp * bool
  | Iconst_str of temp * int  (** string-pool index *)
  | Iconst_nil of temp
  | Icopy of temp * temp  (** [Icopy (dst, src)] *)
  | Iload_var of temp * int
  | Istore_var of int * temp
  | Iload_field of temp * int
  | Istore_field of int * temp
  | Ibin of {
      dst : temp;
      op : Isa.Insn.binop;
      ty : arith_ty;
      a : temp;
      b : temp;
    }
  | Icmp of {
      dst : temp;
      op : Isa.Insn.cmp;
      ty : arith_ty;
      a : temp;
      b : temp;
    }
  | Ineg of {
      dst : temp;
      ty : arith_ty;
      a : temp;
    }
  | Inot of {
      dst : temp;
      a : temp;
    }
  | Icvt_int_real of {
      dst : temp;
      a : temp;
    }
  | Iinvoke of {
      dst : temp option;
      target : temp;
      class_index : int;
      method_index : int;
      method_name : string;
      args : temp list;
      stop : int;
    }
  | Inew of {
      dst : temp;
      class_index : int;
      stop : int;
    }
  | Ibuiltin of {
      dst : temp option;
      bi : builtin;
      args : temp list;
      stop : int;
    }
  | Ivec_get of {
      dst : temp;
      vec : temp;
      idx : temp;
      stop : int;  (** the bounds-failure stop *)
    }
  | Ivec_set of {
      vec : temp;
      idx : temp;
      src : temp;
      stop : int;
    }
  | Ivec_len of {
      dst : temp;
      vec : temp;
    }
  | Imon_enter of { stop : int }
  | Imon_exit of {
      dequeue_stop : int;
      wake_stop : int;
    }

type terminator =
  | Tjump of label
  | Tcond of {
      c : temp;
      if_true : label;
      if_false : label;
    }
  | Treturn
  | Tloop of {
      target : label;
      stop : int;  (** loop-bottom poll stop *)
    }

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type var_kind =
  | Kself
  | Kparam of int
  | Kresult
  | Klocal of int

type var_def = {
  vd_name : string;
  vd_type : Ast.typ;
  vd_kind : var_kind;
}

type op_ir = {
  oi_name : string;
  oi_index : int;
  oi_monitored : bool;
  oi_vars : var_def array;  (** self, params, result, locals — in that order *)
  oi_nparams : int;  (** including self *)
  oi_result : int option;  (** var id of the result *)
  oi_temp_types : Ast.typ array;
  oi_blocks : block array;  (** entry is block 0; labels are array indices *)
  oi_stops : stop_rec array;  (** this operation's stops, ascending id *)
}

type field_init =
  | Fint of int32
  | Freal of float
  | Fbool of bool
  | Fstr of string
  | Fnil

type class_ir = {
  cl_name : string;
  cl_index : int;
  cl_fields : (string * Ast.typ) array;
  cl_attached : bool array;
  cl_field_inits : field_init array;
  cl_conditions : string array;
  cl_strings : string array;
  cl_ops : op_ir array;
  cl_nstops : int;  (** total bus stops in the class *)
  cl_has_initially : bool;
}

type program_ir = {
  pr_name : string;
  pr_classes : class_ir array;
}

val is_pointer_type : Ast.typ -> bool
(** strings and object references are pointers; nil-typed slots are too *)

val builtin_name : builtin -> string
val defs : instr -> temp option
val uses : instr -> temp list
val stop_of_instr : instr -> int list
val term_uses : terminator -> temp list
val successors : terminator -> label list
val find_stop : op_ir -> int -> stop_rec
