module T = Typecheck

type builder = {
  blocks : (Ir.label, Ir.block) Hashtbl.t;
  mutable cur_label : Ir.label;
  mutable cur_instrs : Ir.instr list;  (* reversed *)
  mutable cur_open : bool;
  mutable next_label : int;
  mutable temp_types : Ast.typ list;  (* reversed *)
  mutable n_temps : int;
  mutable stops : Ir.stop_rec list;  (* reversed *)
  stop_counter : int ref;  (* class-global *)
  op_index : int;
  strings : (string, int) Hashtbl.t;
  string_list : string list ref;  (* reversed, class-global *)
  var_of_param : int array;  (* declared param index -> var id *)
  var_of_local : int array;
  var_of_result : int option;
  monitored : bool;
  mutable loop_exits : Ir.label list;
}

let fresh_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let fresh_temp b ty =
  let t = b.n_temps in
  b.n_temps <- t + 1;
  b.temp_types <- ty :: b.temp_types;
  t

let fresh_stop b kind =
  let id = !(b.stop_counter) in
  incr b.stop_counter;
  let rec_ = { Ir.sr_id = id; sr_op = b.op_index; sr_kind = kind; sr_live = [] } in
  b.stops <- rec_ :: b.stops;
  id

let emit b i =
  assert b.cur_open;
  b.cur_instrs <- i :: b.cur_instrs

let close b term =
  assert b.cur_open;
  Hashtbl.replace b.blocks b.cur_label
    { Ir.b_label = b.cur_label; b_instrs = List.rev b.cur_instrs; b_term = term };
  b.cur_open <- false

let start b label =
  assert (not b.cur_open);
  b.cur_label <- label;
  b.cur_instrs <- [];
  b.cur_open <- true

let string_index b s =
  match Hashtbl.find_opt b.strings s with
  | Some i -> i
  | None ->
    let i = Hashtbl.length b.strings in
    Hashtbl.replace b.strings s i;
    b.string_list := s :: !(b.string_list);
    i

let var_of_ref b = function
  | T.Vparam i -> b.var_of_param.(i)
  | T.Vlocal i -> b.var_of_local.(i)
  | T.Vresult -> (
    match b.var_of_result with
    | Some v -> v
    | None -> assert false)
  | T.Vfield _ -> assert false

let ast_arith = function
  | Ast.Badd -> Isa.Insn.Add
  | Ast.Bsub -> Isa.Insn.Sub
  | Ast.Bmul -> Isa.Insn.Mul
  | Ast.Bdiv -> Isa.Insn.Div
  | Ast.Bmod -> Isa.Insn.Mod
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge | Ast.Band | Ast.Bor ->
    assert false

let ast_cmp = function
  | Ast.Beq -> Isa.Insn.Eq
  | Ast.Bne -> Isa.Insn.Ne
  | Ast.Blt -> Isa.Insn.Lt
  | Ast.Ble -> Isa.Insn.Le
  | Ast.Bgt -> Isa.Insn.Gt
  | Ast.Bge -> Isa.Insn.Ge
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Bmod | Ast.Band | Ast.Bor ->
    assert false

let arith_ty_of = function
  | Ast.Treal -> Ir.Areal
  | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tobj _ | Ast.Tvec _ | Ast.Tnil -> Ir.Aint

let rec lower_expr b (e : T.texpr) : Ir.temp =
  match e.T.te_d with
  | T.TEint v ->
    let t = fresh_temp b Ast.Tint in
    emit b (Ir.Iconst_int (t, v));
    t
  | T.TEreal v ->
    let t = fresh_temp b Ast.Treal in
    emit b (Ir.Iconst_real (t, v));
    t
  | T.TEbool v ->
    let t = fresh_temp b Ast.Tbool in
    emit b (Ir.Iconst_bool (t, v));
    t
  | T.TEstr s ->
    let t = fresh_temp b Ast.Tstring in
    emit b (Ir.Iconst_str (t, string_index b s));
    t
  | T.TEnil ->
    let t = fresh_temp b Ast.Tnil in
    emit b (Ir.Iconst_nil t);
    t
  | T.TEself ->
    let t = fresh_temp b e.T.te_t in
    emit b (Ir.Iload_var (t, 0));
    t
  | T.TEvar (T.Vfield i, _) ->
    let t = fresh_temp b e.T.te_t in
    emit b (Ir.Iload_field (t, i));
    t
  | T.TEvar (vr, _) ->
    let t = fresh_temp b e.T.te_t in
    emit b (Ir.Iload_var (t, var_of_ref b vr));
    t
  | T.TEcvt_int_to_real x ->
    let tx = lower_expr b x in
    let t = fresh_temp b Ast.Treal in
    emit b (Ir.Icvt_int_real { dst = t; a = tx });
    t
  | T.TEun (Ast.Uneg, x) ->
    let tx = lower_expr b x in
    let t = fresh_temp b e.T.te_t in
    emit b (Ir.Ineg { dst = t; ty = arith_ty_of e.T.te_t; a = tx });
    t
  | T.TEun (Ast.Unot, x) ->
    let tx = lower_expr b x in
    let t = fresh_temp b Ast.Tbool in
    emit b (Ir.Inot { dst = t; a = tx });
    t
  | T.TEbin ((Ast.Band | Ast.Bor) as op, x, y) -> lower_short_circuit b op x y
  | T.TEbin (Ast.Badd, x, y) when Ast.typ_equal x.T.te_t Ast.Tstring ->
    lower_builtin b Ir.Bsconcat [ x; y ] (Some Ast.Tstring)
  | T.TEbin ((Ast.Beq | Ast.Bne) as op, x, y) when Ast.typ_equal x.T.te_t Ast.Tstring ->
    let t = lower_builtin b Ir.Bseq [ x; y ] (Some Ast.Tbool) in
    if op = Ast.Beq then t
    else begin
      let t' = fresh_temp b Ast.Tbool in
      emit b (Ir.Inot { dst = t'; a = t });
      t'
    end
  | T.TEbin ((Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Bmod) as op, x, y) ->
    let tx = lower_expr b x in
    let ty_ = lower_expr b y in
    let t = fresh_temp b e.T.te_t in
    emit b
      (Ir.Ibin { dst = t; op = ast_arith op; ty = arith_ty_of e.T.te_t; a = tx; b = ty_ });
    t
  | T.TEbin ((Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge) as op, x, y) ->
    let tx = lower_expr b x in
    let ty_ = lower_expr b y in
    let t = fresh_temp b Ast.Tbool in
    emit b
      (Ir.Icmp { dst = t; op = ast_cmp op; ty = arith_ty_of x.T.te_t; a = tx; b = ty_ });
    t
  | T.TEinvoke (target, ci, msig, args) ->
    let ttarget = lower_expr b target in
    let targs = List.map (lower_expr b) args in
    let rt = e.T.te_t in
    let dst = fresh_temp b rt in
    let stop =
      fresh_stop b
        (Ir.Sk_invoke
           {
             argc = List.length targs;
             has_result = msig.T.m_result <> None;
             callee_class = ci.T.ci_index;
             callee_method = msig.T.m_index;
           })
    in
    emit b
      (Ir.Iinvoke
         {
           dst = Some dst;
           target = ttarget;
           class_index = ci.T.ci_index;
           method_index = msig.T.m_index;
           method_name = msig.T.m_name;
           args = targs;
           stop;
         });
    dst
  | T.TEnew (ci, args) ->
    let dst = fresh_temp b e.T.te_t in
    let stop = fresh_stop b (Ir.Sk_new { class_index = ci.T.ci_index }) in
    emit b (Ir.Inew { dst; class_index = ci.T.ci_index; stop });
    if ci.T.ci_has_initially then begin
      let init =
        match
          Array.find_opt (fun m -> String.equal m.T.m_name "initially") ci.T.ci_methods
        with
        | Some m -> m
        | None -> assert false
      in
      let targs = List.map (lower_expr b) args in
      let stop =
        fresh_stop b
          (Ir.Sk_invoke
             {
               argc = List.length targs;
               has_result = false;
               callee_class = ci.T.ci_index;
               callee_method = init.T.m_index;
             })
      in
      emit b
        (Ir.Iinvoke
           {
             dst = None;
             target = dst;
             class_index = ci.T.ci_index;
             method_index = init.T.m_index;
             method_name = "initially";
             args = targs;
             stop;
           })
    end;
    if ci.T.ci_has_process then begin
      let stop =
        fresh_stop b
          (Ir.Sk_builtin { bi = Ir.Bstart_process; argc = 1; has_result = false })
      in
      emit b (Ir.Ibuiltin { dst = None; bi = Ir.Bstart_process; args = [ dst ]; stop })
    end;
    dst
  | T.TEvec_new (elem_ty, len) ->
    let tk = fresh_temp b Ast.Tint in
    emit b (Ir.Iconst_int (tk, Int32.of_int (Layout.kind_of_typ elem_ty)));
    let tl = lower_expr b len in
    let dst = fresh_temp b (Ast.Tvec elem_ty) in
    let stop =
      fresh_stop b (Ir.Sk_builtin { bi = Ir.Bvec_new; argc = 2; has_result = true })
    in
    emit b (Ir.Ibuiltin { dst = Some dst; bi = Ir.Bvec_new; args = [ tk; tl ]; stop });
    dst
  | T.TEindex (vec, idx) ->
    let tv = lower_expr b vec in
    let ti = lower_expr b idx in
    let dst = fresh_temp b e.T.te_t in
    let stop =
      fresh_stop b (Ir.Sk_builtin { bi = Ir.Bbounds; argc = 1; has_result = false })
    in
    emit b (Ir.Ivec_get { dst; vec = tv; idx = ti; stop });
    dst
  | T.TEveclen vec ->
    let tv = lower_expr b vec in
    let dst = fresh_temp b Ast.Tint in
    emit b (Ir.Ivec_len { dst; vec = tv });
    dst
  | T.TElocate x -> lower_builtin b Ir.Blocate [ x ] (Some Ast.Tint)
  | T.TEthisnode -> lower_builtin b Ir.Bthisnode [] (Some Ast.Tint)
  | T.TEtimenow -> lower_builtin b Ir.Btimenow [] (Some Ast.Tint)

and lower_builtin b bi args result_ty : Ir.temp =
  let targs = List.map (lower_expr b) args in
  let dst = Option.map (fun ty -> fresh_temp b ty) result_ty in
  let stop =
    fresh_stop b
      (Ir.Sk_builtin { bi; argc = List.length targs; has_result = dst <> None })
  in
  emit b (Ir.Ibuiltin { dst; bi; args = targs; stop });
  match dst with
  | Some t -> t
  | None -> -1

and lower_short_circuit b op x y : Ir.temp =
  let result = fresh_temp b Ast.Tbool in
  let tx = lower_expr b x in
  let l_rhs = fresh_label b and l_short = fresh_label b and l_join = fresh_label b in
  (match op with
  | Ast.Band -> close b (Ir.Tcond { c = tx; if_true = l_rhs; if_false = l_short })
  | Ast.Bor -> close b (Ir.Tcond { c = tx; if_true = l_short; if_false = l_rhs })
  | _ -> assert false);
  start b l_rhs;
  let ty_ = lower_expr b y in
  emit b (Ir.Icopy (result, ty_));
  close b (Ir.Tjump l_join);
  start b l_short;
  emit b (Ir.Iconst_bool (result, op = Ast.Bor));
  close b (Ir.Tjump l_join);
  start b l_join;
  result

let emit_monitor_exit b =
  let dequeue_stop = fresh_stop b Ir.Sk_mon_dequeue in
  let wake_stop = fresh_stop b Ir.Sk_mon_wake in
  emit b (Ir.Imon_exit { dequeue_stop; wake_stop })

let rec lower_stmt b (s : T.tstmt) =
  match s with
  | T.TSdecl (i, e) ->
    let t = lower_expr b e in
    emit b (Ir.Istore_var (b.var_of_local.(i), t))
  | T.TSassign (T.Vfield i, e) ->
    let t = lower_expr b e in
    emit b (Ir.Istore_field (i, t))
  | T.TSassign (vr, e) ->
    let t = lower_expr b e in
    emit b (Ir.Istore_var (var_of_ref b vr, t))
  | T.TSindex_assign (vec, idx, e) ->
    let tv = lower_expr b vec in
    let ti = lower_expr b idx in
    let ts = lower_expr b e in
    let stop =
      fresh_stop b (Ir.Sk_builtin { bi = Ir.Bbounds; argc = 1; has_result = false })
    in
    emit b (Ir.Ivec_set { vec = tv; idx = ti; src = ts; stop })
  | T.TSexpr e -> (
    match e.T.te_d with
    | T.TEinvoke (target, ci, msig, args) ->
      (* invocation for effect: no destination temp *)
      let ttarget = lower_expr b target in
      let targs = List.map (lower_expr b) args in
      let stop =
        fresh_stop b
          (Ir.Sk_invoke
             {
               argc = List.length targs;
               has_result = msig.T.m_result <> None;
               callee_class = ci.T.ci_index;
               callee_method = msig.T.m_index;
             })
      in
      emit b
        (Ir.Iinvoke
           {
             dst = None;
             target = ttarget;
             class_index = ci.T.ci_index;
             method_index = msig.T.m_index;
             method_name = msig.T.m_name;
             args = targs;
             stop;
           })
    | _ -> ignore (lower_expr b e))
  | T.TSif (arms, els) ->
    let l_join = fresh_label b in
    let rec go = function
      | [] ->
        List.iter (lower_stmt b) els;
        close b (Ir.Tjump l_join)
      | (cond, body) :: rest ->
        let tc = lower_expr b cond in
        let l_then = fresh_label b and l_else = fresh_label b in
        close b (Ir.Tcond { c = tc; if_true = l_then; if_false = l_else });
        start b l_then;
        List.iter (lower_stmt b) body;
        close b (Ir.Tjump l_join);
        start b l_else;
        go rest
    in
    go arms;
    start b l_join
  | T.TSloop body ->
    let l_head = fresh_label b and l_exit = fresh_label b in
    close b (Ir.Tjump l_head);
    start b l_head;
    b.loop_exits <- l_exit :: b.loop_exits;
    List.iter (lower_stmt b) body;
    b.loop_exits <- List.tl b.loop_exits;
    let stop = fresh_stop b Ir.Sk_loop in
    close b (Ir.Tloop { target = l_head; stop });
    start b l_exit
  | T.TSexit cond -> (
    let l_exit =
      match b.loop_exits with
      | l :: _ -> l
      | [] -> assert false
    in
    match cond with
    | None ->
      close b (Ir.Tjump l_exit);
      start b (fresh_label b) (* unreachable continuation *)
    | Some c ->
      let tc = lower_expr b c in
      let l_cont = fresh_label b in
      close b (Ir.Tcond { c = tc; if_true = l_exit; if_false = l_cont });
      start b l_cont)
  | T.TSreturn ->
    if b.monitored then emit_monitor_exit b;
    close b Ir.Treturn;
    start b (fresh_label b)
  | T.TSmove (obj, node) -> ignore (lower_builtin b Ir.Bmove [ obj; node ] None)
  | T.TSwait (cond, timeout) -> (
    let tself = fresh_temp b (Ast.Tobj "<self>") in
    emit b (Ir.Iload_var (tself, 0));
    let tidx = fresh_temp b Ast.Tint in
    emit b (Ir.Iconst_int (tidx, Int32.of_int cond));
    match timeout with
    | None ->
      let stop =
        fresh_stop b
          (Ir.Sk_builtin { bi = Ir.Bcond_wait; argc = 2; has_result = false })
      in
      emit b
        (Ir.Ibuiltin { dst = None; bi = Ir.Bcond_wait; args = [ tself; tidx ]; stop })
    | Some te ->
      let ttimeout = lower_expr b te in
      let stop =
        fresh_stop b
          (Ir.Sk_builtin { bi = Ir.Bcond_wait_timed; argc = 3; has_result = false })
      in
      emit b
        (Ir.Ibuiltin
           {
             dst = None;
             bi = Ir.Bcond_wait_timed;
             args = [ tself; tidx; ttimeout ];
             stop;
           }))
  | T.TSnotifyall cond ->
    let tself = fresh_temp b (Ast.Tobj "<self>") in
    emit b (Ir.Iload_var (tself, 0));
    let tidx = fresh_temp b Ast.Tint in
    emit b (Ir.Iconst_int (tidx, Int32.of_int cond));
    let stop =
      fresh_stop b
        (Ir.Sk_builtin { bi = Ir.Bcond_notify_all; argc = 2; has_result = false })
    in
    emit b
      (Ir.Ibuiltin
         { dst = None; bi = Ir.Bcond_notify_all; args = [ tself; tidx ]; stop })
  | T.TSsignal cond ->
    let tself = fresh_temp b (Ast.Tobj "<self>") in
    emit b (Ir.Iload_var (tself, 0));
    let tidx = fresh_temp b Ast.Tint in
    emit b (Ir.Iconst_int (tidx, Int32.of_int cond));
    let stop =
      fresh_stop b
        (Ir.Sk_builtin { bi = Ir.Bcond_signal; argc = 2; has_result = false })
    in
    emit b
      (Ir.Ibuiltin { dst = None; bi = Ir.Bcond_signal; args = [ tself; tidx ]; stop })
  | T.TSprint args ->
    List.iter
      (fun (a : T.texpr) ->
        let bi =
          match a.T.te_t with
          | Ast.Tint -> Ir.Bprint_int
          | Ast.Treal -> Ir.Bprint_real
          | Ast.Tbool -> Ir.Bprint_bool
          | Ast.Tstring -> Ir.Bprint_str
          | Ast.Tobj _ | Ast.Tvec _ | Ast.Tnil -> Ir.Bprint_ref
        in
        ignore (lower_builtin b bi [ a ] None))
      args;
    ignore (lower_builtin b Ir.Bprint_nl [] None)

let lower_op ~stop_counter ~strings ~string_list op_index (top : T.top) : Ir.op_ir =
  let msig = top.T.t_sig in
  (* variable table: self, params, result, locals *)
  let vars = ref [] in
  let add v = vars := v :: !vars in
  add { Ir.vd_name = "self"; vd_type = Ast.Tobj "<self>"; vd_kind = Ir.Kself };
  List.iteri
    (fun i (n, t) -> add { Ir.vd_name = n; vd_type = t; vd_kind = Ir.Kparam i })
    msig.T.m_params;
  let nparams = 1 + List.length msig.T.m_params in
  let result_var =
    match msig.T.m_result with
    | Some t ->
      add { Ir.vd_name = "<result>"; vd_type = t; vd_kind = Ir.Kresult };
      Some (nparams)
    | None -> None
  in
  let local_base = nparams + if result_var = None then 0 else 1 in
  Array.iteri
    (fun i (n, t) -> add { Ir.vd_name = n; vd_type = t; vd_kind = Ir.Klocal i })
    top.T.t_locals;
  let b =
    {
      blocks = Hashtbl.create 16;
      cur_label = 0;
      cur_instrs = [];
      cur_open = false;
      next_label = 0;
      temp_types = [];
      n_temps = 0;
      stops = [];
      stop_counter;
      op_index;
      strings;
      string_list;
      var_of_param = Array.init (List.length msig.T.m_params) (fun i -> i + 1);
      var_of_local = Array.init (Array.length top.T.t_locals) (fun i -> local_base + i);
      var_of_result = result_var;
      monitored = msig.T.m_monitored;
      loop_exits = [];
    }
  in
  let entry = fresh_label b in
  start b entry;
  if msig.T.m_monitored then begin
    let stop = fresh_stop b Ir.Sk_mon_enter in
    emit b (Ir.Imon_enter { stop })
  end;
  List.iter (lower_stmt b) top.T.t_body;
  if b.cur_open then begin
    if msig.T.m_monitored then emit_monitor_exit b;
    close b Ir.Treturn
  end;
  (* materialise the block array; labels without a placed block are
     unreachable continuations that were never started *)
  let blocks =
    Array.init b.next_label (fun l ->
        match Hashtbl.find_opt b.blocks l with
        | Some blk -> blk
        | None -> { Ir.b_label = l; b_instrs = []; b_term = Ir.Treturn })
  in
  {
    Ir.oi_name = msig.T.m_name;
    oi_index = op_index;
    oi_monitored = msig.T.m_monitored;
    oi_vars = Array.of_list (List.rev !vars);
    oi_nparams = nparams;
    oi_result = result_var;
    oi_temp_types = Array.of_list (List.rev b.temp_types);
    oi_blocks = blocks;
    oi_stops = Array.of_list (List.rev b.stops);
  }

let lower_class (tc : T.tclass) : Ir.class_ir =
  let ci = tc.T.tc_info in
  let stop_counter = ref 0 in
  let strings = Hashtbl.create 16 in
  let string_list = ref [] in
  let ops =
    Array.mapi (fun i top -> lower_op ~stop_counter ~strings ~string_list i top) tc.T.tc_ops
  in
  let field_init (e : T.texpr) =
    match e.T.te_d with
    | T.TEint v -> Ir.Fint v
    | T.TEreal v -> Ir.Freal v
    | T.TEbool v -> Ir.Fbool v
    | T.TEstr v -> Ir.Fstr v
    | T.TEnil -> Ir.Fnil
    | T.TEcvt_int_to_real { T.te_d = T.TEint v; _ } -> Ir.Freal (Int32.to_float v)
    | _ -> assert false (* the typechecker restricts initialisers to literals *)
  in
  {
    Ir.cl_name = ci.T.ci_name;
    cl_index = ci.T.ci_index;
    cl_fields = ci.T.ci_fields;
    cl_attached = ci.T.ci_attached;
    cl_field_inits = Array.map field_init tc.T.tc_field_inits;
    cl_conditions = ci.T.ci_conditions;
    cl_strings = Array.of_list (List.rev !string_list);
    cl_ops = ops;
    cl_nstops = !stop_counter;
    cl_has_initially = ci.T.ci_has_initially;
  }

let lower_program ~name (tp : T.tprog) : Ir.program_ir =
  { Ir.pr_name = name; pr_classes = Array.map lower_class tp.T.tp_classes }
