module I = Isa.Insn
module O = Isa.Operand

(* a memory operand with a stable meaning across adjacent instructions
   (no auto-modification, base register not written in between — we only
   look at immediately adjacent pairs where the first writes no register
   other than possibly the reload target) *)
let stable_mem = function
  | O.Mem (O.Disp (_, _) as m) -> Some m
  | O.Mem (O.Abs _ as m) -> Some m
  | O.Mem (O.Autoinc _) | O.Mem (O.Autodec _) | O.Reg _ | O.Imm _ -> None

let mem_base = function
  | O.Disp (r, _) -> Some r
  | O.Abs _ -> None
  | O.Autoinc r | O.Autodec r -> Some r

let optimize ~family ~protected ?edits insns =
  let record i desc insn =
    match edits with
    | Some l ->
      l :=
        {
          Opt.ed_pass = "peephole";
          ed_index = i;
          ed_desc =
            Printf.sprintf "%s: %s" desc (Format.asprintf "%a" (I.pp family) insn);
        }
        :: !l
    | None -> ()
  in
  let n = Array.length insns in
  let out = Array.copy insns in
  let deleted = Array.make n false in
  for i = 0 to n - 2 do
    if not deleted.(i) then begin
      (* next surviving instruction *)
      let rec next j = if j >= n then None else if deleted.(j) then next (j + 1) else Some j in
      match next (i + 1) with
      | None -> ()
      | Some j ->
        if not protected.(j) then begin
          match out.(i), out.(j) with
          (* store slot; reload same slot *)
          | I.Mov (O.Reg r, store_dst), I.Mov (load_src, O.Reg r') -> (
            match stable_mem store_dst, stable_mem load_src with
            | Some m1, Some m2 when m1 = m2 && mem_base m1 <> Some r ->
              if r = r' then begin
                record j "drop adjacent reload" out.(j);
                deleted.(j) <- true
              end
              else begin
                record j "promote adjacent reload to register move" out.(j);
                out.(j) <- I.Mov (O.Reg r, O.Reg r')
              end
            | _, _ -> ())
          | _, _ -> ()
        end
    end
  done;
  (* register self-moves *)
  for i = 0 to n - 1 do
    if (not deleted.(i)) && not protected.(i) then begin
      match out.(i) with
      | I.Mov (O.Reg a, O.Reg b) when a = b ->
        record i "drop register self-move" out.(i);
        deleted.(i) <- true
      | _ -> ()
    end
  done;
  let remap = Array.make n 0 in
  let kept = ref [] in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    remap.(i) <- !pos;
    if not deleted.(i) then begin
      kept := out.(i) :: !kept;
      incr pos
    end
  done;
  (Array.of_list (List.rev !kept), remap)

let saved ~before ~after = Array.length before - Array.length after
