(** Peephole optimization between bus stops.

    "Given a set of bus stops, the code generator is free to optimize code
    between bus stops in any way, as the optimization transformations are
    not visible to the runtime system" (section 2.2.1).  This pass removes
    and rewrites instructions between the protected points — bus-stop PCs,
    label targets and method entries — leaving the stop discipline (and
    hence migration and GC) untouched.  Deletion-only plus in-place
    rewrites, so a simple index remap suffices to fix every table.

    Patterns:
    - [mov r, r] — removed;
    - store to a frame slot immediately followed by a reload of the same
      slot into the same register — the reload is removed (the common
      store-through-then-use sequence);
    - store/reload into a different register — the reload becomes a
      register move (cheaper than the memory access on every family). *)

val optimize :
  family:Isa.Arch.family ->
  protected:bool array ->
  ?edits:Opt.edit list ref ->
  Isa.Insn.t array ->
  Isa.Insn.t array * int array
(** [optimize ~family ~protected insns] returns the optimized instruction
    array and a remap such that [remap.(i)] is the new index of old
    instruction [i] (or of the next surviving instruction when [i] was
    deleted).  [protected.(i)] marks instructions that must survive
    unchanged and must not rely on fall-through context (branch targets,
    bus stops, method entries).  When [edits] is given, every deletion and
    rewrite is prepended to it as a provenance record ({!Opt.edit},
    indexes into this pass's input buffer). *)

val saved : before:Isa.Insn.t array -> after:Isa.Insn.t array -> int
(** Instructions removed. *)
