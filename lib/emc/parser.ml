type state = {
  mutable toks : (Lexer.token * Ast.pos) list;
}

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Lexer.EOF, Ast.no_pos)

let peek2 st =
  match st.toks with
  | _ :: (t, _) :: _ -> t
  | _ :: [] | [] -> Lexer.EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok =
  let t, p = peek st in
  if t = tok then advance st
  else Diag.error p "expected %s but found %s" (Lexer.token_name tok) (Lexer.token_name t)

let expect_ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
    advance st;
    name
  | t, p -> Diag.error p "expected an identifier but found %s" (Lexer.token_name t)

let rec parse_typ st =
  match peek st with
  | Lexer.KVECTOR, _ ->
    advance st;
    expect st Lexer.LBRACKET;
    let elem = parse_typ st in
    expect st Lexer.RBRACKET;
    Ast.Tvec elem
  | Lexer.IDENT "int", _ ->
    advance st;
    Ast.Tint
  | Lexer.IDENT "real", _ ->
    advance st;
    Ast.Treal
  | Lexer.IDENT "bool", _ ->
    advance st;
    Ast.Tbool
  | Lexer.IDENT "string", _ ->
    advance st;
    Ast.Tstring
  | Lexer.IDENT name, _ ->
    advance st;
    Ast.Tobj name
  | t, p -> Diag.error p "expected a type but found %s" (Lexer.token_name t)

(* Expressions ----------------------------------------------------------- *)

let mk p d = { Ast.e_pos = p; Ast.e_desc = d }

let rec parse_expr_prec st = parse_or st

and parse_or st =
  let rec go lhs =
    match peek st with
    | Lexer.KOR, p ->
      advance st;
      let rhs = parse_and st in
      go (mk p (Ast.Ebin (Ast.Bor, lhs, rhs)))
    | _, _ -> lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    match peek st with
    | Lexer.KAND, p ->
      advance st;
      let rhs = parse_cmp st in
      go (mk p (Ast.Ebin (Ast.Band, lhs, rhs)))
    | _, _ -> lhs
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let mkcmp op =
    let _, p = peek st in
    advance st;
    let rhs = parse_add st in
    mk p (Ast.Ebin (op, lhs, rhs))
  in
  match peek st with
  | Lexer.EQEQ, _ -> mkcmp Ast.Beq
  | Lexer.NEQ, _ -> mkcmp Ast.Bne
  | Lexer.LT, _ -> mkcmp Ast.Blt
  | Lexer.LE, _ -> mkcmp Ast.Ble
  | Lexer.GT, _ -> mkcmp Ast.Bgt
  | Lexer.GE, _ -> mkcmp Ast.Bge
  | _, _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS, p ->
      advance st;
      go (mk p (Ast.Ebin (Ast.Badd, lhs, parse_mul st)))
    | Lexer.MINUS, p ->
      advance st;
      go (mk p (Ast.Ebin (Ast.Bsub, lhs, parse_mul st)))
    | _, _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR, p ->
      advance st;
      go (mk p (Ast.Ebin (Ast.Bmul, lhs, parse_unary st)))
    | Lexer.SLASH, p ->
      advance st;
      go (mk p (Ast.Ebin (Ast.Bdiv, lhs, parse_unary st)))
    | Lexer.PERCENT, p ->
      advance st;
      go (mk p (Ast.Ebin (Ast.Bmod, lhs, parse_unary st)))
    | _, _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS, p ->
    advance st;
    mk p (Ast.Eun (Ast.Uneg, parse_unary st))
  | Lexer.KNOT, p ->
    advance st;
    mk p (Ast.Eun (Ast.Unot, parse_unary st))
  | _, _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Lexer.DOT, p ->
      advance st;
      let name = expect_ident st in
      let args = parse_bracketed_args st in
      go (mk p (Ast.Einvoke (e, name, args)))
    | Lexer.LBRACKET, p ->
      advance st;
      let idx = parse_expr_prec st in
      expect st Lexer.RBRACKET;
      go (mk p (Ast.Eindex (e, idx)))
    | _, _ -> e
  in
  go (parse_atom st)

and parse_bracketed_args st =
  match peek st with
  | Lexer.LBRACKET, _ ->
    advance st;
    let rec args acc =
      match peek st with
      | Lexer.RBRACKET, _ ->
        advance st;
        List.rev acc
      | _, _ -> (
        let e = parse_expr_prec st in
        match peek st with
        | Lexer.COMMA, _ ->
          advance st;
          args (e :: acc)
        | Lexer.RBRACKET, _ ->
          advance st;
          List.rev (e :: acc)
        | t, p -> Diag.error p "expected ',' or ']' but found %s" (Lexer.token_name t))
    in
    args []
  | _, _ -> []

and parse_atom st =
  let t, p = peek st in
  match t with
  | Lexer.INT v ->
    advance st;
    mk p (Ast.Eint v)
  | Lexer.REAL v ->
    advance st;
    mk p (Ast.Ereal v)
  | Lexer.STRING s ->
    advance st;
    mk p (Ast.Estr s)
  | Lexer.KTRUE ->
    advance st;
    mk p (Ast.Ebool true)
  | Lexer.KFALSE ->
    advance st;
    mk p (Ast.Ebool false)
  | Lexer.KNIL ->
    advance st;
    mk p Ast.Enil
  | Lexer.KSELF ->
    advance st;
    mk p Ast.Eself
  | Lexer.KTHISNODE ->
    advance st;
    mk p Ast.Ethisnode
  | Lexer.KTIMENOW ->
    advance st;
    mk p Ast.Etimenow
  | Lexer.KLOCATE ->
    advance st;
    expect st Lexer.LBRACKET;
    let e = parse_expr_prec st in
    expect st Lexer.RBRACKET;
    mk p (Ast.Elocate e)
  | Lexer.KNEW ->
    advance st;
    let name = expect_ident st in
    let args = parse_bracketed_args st in
    mk p (Ast.Enew (name, args))
  | Lexer.KVECTOR ->
    advance st;
    expect st Lexer.LBRACKET;
    let elem = parse_typ st in
    expect st Lexer.COMMA;
    let len = parse_expr_prec st in
    expect st Lexer.RBRACKET;
    mk p (Ast.Evec_new (elem, len))
  | Lexer.IDENT name ->
    advance st;
    mk p (Ast.Evar name)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr_prec st in
    expect st Lexer.RPAREN;
    e
  | _ -> Diag.error p "expected an expression but found %s" (Lexer.token_name t)

(* Statements ------------------------------------------------------------ *)

let mks p d = { Ast.s_pos = p; Ast.s_desc = d }

let stmt_terminator = function
  | Lexer.KEND | Lexer.KELSE | Lexer.KELSEIF | Lexer.EOF -> true
  | _ -> false

let rec parse_stmts st =
  let rec go acc =
    let t, _ = peek st in
    if stmt_terminator t then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  let t, p = peek st in
  match t with
  | Lexer.KVAR ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.COLON;
    let ty = parse_typ st in
    expect st Lexer.LARROW;
    let e = parse_expr_prec st in
    mks p (Ast.Svar (name, ty, e))
  | Lexer.KIF ->
    advance st;
    let cond = parse_expr_prec st in
    expect st Lexer.KTHEN;
    let body = parse_stmts st in
    let rec arms acc =
      match peek st with
      | Lexer.KELSEIF, _ ->
        advance st;
        let c = parse_expr_prec st in
        expect st Lexer.KTHEN;
        let b = parse_stmts st in
        arms ((c, b) :: acc)
      | Lexer.KELSE, _ ->
        advance st;
        let b = parse_stmts st in
        expect st Lexer.KEND;
        expect st Lexer.KIF;
        (List.rev acc, b)
      | _, _ ->
        expect st Lexer.KEND;
        expect st Lexer.KIF;
        (List.rev acc, [])
    in
    let elifs, els = arms [] in
    mks p (Ast.Sif ((cond, body) :: elifs, els))
  | Lexer.KLOOP ->
    advance st;
    let body = parse_stmts st in
    expect st Lexer.KEND;
    expect st Lexer.KLOOP;
    mks p (Ast.Sloop body)
  | Lexer.KWHILE ->
    advance st;
    let cond = parse_expr_prec st in
    let body = parse_stmts st in
    expect st Lexer.KEND;
    expect st Lexer.KWHILE;
    mks p (Ast.Swhile (cond, body))
  | Lexer.KEXIT ->
    advance st;
    (match peek st with
    | Lexer.KWHEN, _ ->
      advance st;
      let e = parse_expr_prec st in
      mks p (Ast.Sexit (Some e))
    | _, _ -> mks p (Ast.Sexit None))
  | Lexer.KRETURN ->
    advance st;
    mks p Ast.Sreturn
  | Lexer.KMOVE ->
    advance st;
    let obj = parse_expr_prec st in
    expect st Lexer.KTO;
    let node = parse_expr_prec st in
    mks p (Ast.Smove (obj, node))
  | Lexer.KWAIT ->
    advance st;
    let name = expect_ident st in
    let timeout =
      match peek st with
      | Lexer.KTIMEOUT, _ ->
        advance st;
        Some (parse_expr_prec st)
      | _, _ -> None
    in
    mks p (Ast.Swait (name, timeout))
  | Lexer.KSIGNAL | Lexer.KNOTIFY ->
    advance st;
    let name = expect_ident st in
    mks p (Ast.Ssignal name)
  | Lexer.KNOTIFYALL ->
    advance st;
    let name = expect_ident st in
    mks p (Ast.Snotifyall name)
  | Lexer.KPRINT ->
    advance st;
    expect st Lexer.LBRACKET;
    let rec args acc =
      match peek st with
      | Lexer.RBRACKET, _ ->
        advance st;
        List.rev acc
      | _, _ -> (
        let e = parse_expr_prec st in
        match peek st with
        | Lexer.COMMA, _ ->
          advance st;
          args (e :: acc)
        | Lexer.RBRACKET, _ ->
          advance st;
          List.rev (e :: acc)
        | tk, pp -> Diag.error pp "expected ',' or ']' but found %s" (Lexer.token_name tk))
    in
    mks p (Ast.Sprint (args []))
  | Lexer.IDENT name when peek2 st = Lexer.LARROW ->
    advance st;
    advance st;
    let e = parse_expr_prec st in
    mks p (Ast.Sassign (name, e))
  | _ -> (
    let e = parse_expr_prec st in
    match peek st with
    | Lexer.LARROW, _ -> (
      advance st;
      let rhs = parse_expr_prec st in
      match e.Ast.e_desc with
      | Ast.Eindex (vec, idx) -> mks p (Ast.Sindex_assign (vec, idx, rhs))
      | _ -> Diag.error p "only variables and vector elements can be assigned")
    | _, _ -> (
      match e.Ast.e_desc with
      | Ast.Einvoke (_, _, _) | Ast.Enew (_, _) -> mks p (Ast.Sexpr e)
      | _ -> Diag.error p "only invocations may be used as statements"))

(* Declarations ---------------------------------------------------------- *)

let parse_param_list st =
  expect st Lexer.LBRACKET;
  let rec go acc =
    match peek st with
    | Lexer.RBRACKET, _ ->
      advance st;
      List.rev acc
    | _, _ -> (
      let name = expect_ident st in
      expect st Lexer.COLON;
      let ty = parse_typ st in
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        go ((name, ty) :: acc)
      | Lexer.RBRACKET, _ ->
        advance st;
        List.rev ((name, ty) :: acc)
      | t, p -> Diag.error p "expected ',' or ']' but found %s" (Lexer.token_name t))
  in
  go []

let parse_operation st ~monitored =
  let _, p = peek st in
  expect st Lexer.KOPERATION;
  let name = expect_ident st in
  let params = parse_param_list st in
  let results =
    match peek st with
    | Lexer.RARROW, _ ->
      advance st;
      parse_param_list st
    | _, _ -> []
  in
  if List.length results > 1 then Diag.error p "operation %s: at most one result" name;
  let body = parse_stmts st in
  expect st Lexer.KEND;
  let closing = expect_ident st in
  if not (String.equal closing name) then
    Diag.error p "operation %s closed by 'end %s'" name closing;
  {
    Ast.op_pos = p;
    op_name = name;
    op_monitored = monitored;
    op_params = params;
    op_results = results;
    op_body = body;
  }

let parse_field st ~attached =
  let _, p = peek st in
  expect st Lexer.KVAR;
  let name = expect_ident st in
  expect st Lexer.COLON;
  let ty = parse_typ st in
  expect st Lexer.LARROW;
  let init = parse_expr_prec st in
  { Ast.f_pos = p; f_name = name; f_type = ty; f_attached = attached; f_init = init }

let parse_class st =
  let _, p = peek st in
  expect st Lexer.KOBJECT;
  let name = expect_ident st in
  let rec members fields ops conds process =
    match peek st with
    | Lexer.KEND, _ ->
      advance st;
      let closing = expect_ident st in
      if not (String.equal closing name) then
        Diag.error p "object %s closed by 'end %s'" name closing;
      (List.rev fields, List.rev ops, List.rev conds, process)
    | Lexer.KVAR, _ -> members (parse_field st ~attached:false :: fields) ops conds process
    | Lexer.KATTACHED, _ ->
      advance st;
      members (parse_field st ~attached:true :: fields) ops conds process
    | Lexer.KCONDITION, pp ->
      advance st;
      let cname = expect_ident st in
      members fields ops ((pp, cname) :: conds) process
    | Lexer.KOPERATION, _ ->
      members fields (parse_operation st ~monitored:false :: ops) conds process
    | Lexer.KMONITOR, _ ->
      advance st;
      members fields (parse_operation st ~monitored:true :: ops) conds process
    | Lexer.KPROCESS, pp ->
      if process <> None then Diag.error pp "object %s has two process sections" name;
      advance st;
      let body = parse_stmts st in
      expect st Lexer.KEND;
      expect st Lexer.KPROCESS;
      members fields ops conds (Some body)
    | t, pp ->
      Diag.error pp "expected a field or operation declaration but found %s"
        (Lexer.token_name t)
  in
  let fields, ops, conds, process = members [] [] [] None in
  { Ast.c_pos = p; c_name = name; c_fields = fields; c_ops = ops; c_conditions = conds;
    c_process = process }

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc =
    match peek st with
    | Lexer.EOF, _ -> List.rev acc
    | Lexer.KOBJECT, _ -> go (parse_class st :: acc)
    | t, p -> Diag.error p "expected 'object' but found %s" (Lexer.token_name t)
  in
  { Ast.prog_classes = go [] }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr_prec st in
  expect st Lexer.EOF;
  e
