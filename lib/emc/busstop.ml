type entry = {
  be_id : int;
  be_op : int;
  be_pc : int;
  be_alt_pc : int option;
  be_exit_only : bool;
  be_elided : bool;
  be_sp_depth : int;
  be_pop_bytes : int;
  be_kind : Ir.stop_kind;
}

type frame_info = {
  fr_op : int;
  fr_frame_size : int;
  fr_slot_offsets : int array;
  fr_fixed_sp_depth : int;
}

type table = {
  bt_arch_id : string;
  bt_entries : entry array;
  bt_by_pc : (int, int) Hashtbl.t;
  bt_frames : frame_info array;
}

let make ~arch_id ~entries ~frames =
  Array.iteri
    (fun i e ->
      if e.be_id <> i then
        invalid_arg
          (Printf.sprintf "Busstop.make: entry %d has id %d (must be dense)" i e.be_id))
    entries;
  let by_pc = Hashtbl.create (Array.length entries * 2) in
  Array.iter
    (fun e ->
      if not (e.be_exit_only || e.be_elided) then begin
        Hashtbl.replace by_pc e.be_pc e.be_id;
        match e.be_alt_pc with
        | Some pc -> Hashtbl.replace by_pc pc e.be_id
        | None -> ()
      end)
    entries;
  { bt_arch_id = arch_id; bt_entries = entries; bt_by_pc = by_pc; bt_frames = frames }

let of_pc t pc =
  match Hashtbl.find_opt t.bt_by_pc pc with
  | Some id -> Some t.bt_entries.(id)
  | None -> None

let by_id t id =
  if id < 0 || id >= Array.length t.bt_entries then
    invalid_arg (Printf.sprintf "Busstop.by_id: no stop %d" id);
  t.bt_entries.(id)

let count t = Array.length t.bt_entries

let kind_name = function
  | Ir.Sk_invoke _ -> "invoke"
  | Ir.Sk_new _ -> "new"
  | Ir.Sk_builtin { bi; _ } -> Ir.builtin_name bi
  | Ir.Sk_loop -> "loop"
  | Ir.Sk_mon_enter -> "mon-enter"
  | Ir.Sk_mon_dequeue -> "mon-dequeue"
  | Ir.Sk_mon_wake -> "mon-wake"

let pp ppf t =
  Format.fprintf ppf "bus stops (%s):@." t.bt_arch_id;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  stop %2d op %d pc %04x%s %s sp-depth %d%s%s@." e.be_id e.be_op
        e.be_pc
        (match e.be_alt_pc with
        | Some p -> Printf.sprintf " alt %04x" p
        | None -> "")
        (kind_name e.be_kind) e.be_sp_depth
        (if e.be_exit_only then " [exit-only]" else "")
        (if e.be_elided then " [elided]" else ""))
    t.bt_entries
