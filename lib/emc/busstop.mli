(** Per-architecture bus-stop tables and frame geometry.

    This is the machine-dependent half of the compiler-generated mobility
    information: the bidirectional mapping between program-counter values
    and bus-stop numbers (section 3.3), plus, per stop, the stack-pointer
    geometry needed to rebuild a suspended activation record, and per
    operation, the frame layout mapping template slots to frame-pointer
    offsets.

    Stop numbers and counts are identical across architectures (they come
    from the IR); only the PC values and offsets differ.  Exit-only stops
    (the VAX REMQUE points) have a PC but are absent from the PC-to-stop
    direction, exactly as in section 3.3 of the paper. *)

type entry = {
  be_id : int;  (** class-global bus-stop number *)
  be_op : int;  (** method index *)
  be_pc : int;  (** canonical visible PC / resume point (byte offset) *)
  be_alt_pc : int option;
      (** remote-path [Syscall invoke] PC of an invocation stop — a second
          PC naming the same program point *)
  be_exit_only : bool;
  be_elided : bool;
      (** the optimizer removed this stop's [Poll] instruction from this
          instance (-O2 loop-poll elision): [be_pc] is the loop's
          back-branch, a valid state-equivalence point, but no instruction
          here can suspend — a thread migrating in while parked at this
          stop resumes through a dynamically generated bridge fragment *)
  be_sp_depth : int;  (** bytes of stack below FP while suspended here *)
  be_pop_bytes : int;
      (** outgoing-argument bytes the kernel pops when completing the
          system call (VAX/M68k push arguments; SPARC passes in registers) *)
  be_kind : Ir.stop_kind;
}

type frame_info = {
  fr_op : int;
  fr_frame_size : int;  (** bytes reserved below FP by the prologue *)
  fr_slot_offsets : int array;  (** template slot -> FP-relative offset *)
  fr_fixed_sp_depth : int;  (** SP below FP between stops (no pushes) *)
}

type table = {
  bt_arch_id : string;
  bt_entries : entry array;  (** dense, indexed by stop id *)
  bt_by_pc : (int, int) Hashtbl.t;  (** visible PC -> stop id *)
  bt_frames : frame_info array;  (** indexed by method index *)
}

val make : arch_id:string -> entries:entry array -> frames:frame_info array -> table
(** Builds the PC index (excluding exit-only and elided stops, including
    alternate PCs).  @raise Invalid_argument if entries are not dense by
    id. *)

val of_pc : table -> int -> entry option
val by_id : table -> int -> entry
val count : table -> int
val pp : Format.formatter -> table -> unit
