(** Abstract syntax of the Emerald-like source language.

    The language is a compact rendition of the Emerald constructs the
    paper relies on: objects with private fields and (optionally
    monitored) operations, fine-grained mobility ([move e to n]), and
    location primitives.  Fields are visible only inside their own
    object's operations, so all inter-object interaction is by
    invocation — Emerald's model. *)

type pos = {
  line : int;
  col : int;
}

type typ =
  | Tint
  | Treal
  | Tbool
  | Tstring
  | Tobj of string  (** reference to an instance of a named object class *)
  | Tvec of typ  (** fixed-length mutable vector, marshalled by value *)
  | Tnil

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band
  | Bor

type unop =
  | Uneg
  | Unot

type expr = {
  e_pos : pos;
  e_desc : expr_desc;
}

and expr_desc =
  | Eint of int32
  | Ereal of float
  | Ebool of bool
  | Estr of string
  | Enil
  | Evar of string  (** local variable, parameter, result, or own field *)
  | Eself
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Einvoke of expr * string * expr list  (** [e.op\[args\]] *)
  | Enew of string * expr list
      (** [new C\[args\]]: allocate and run [initially], if declared *)
  | Evec_new of typ * expr  (** [vector\[t, n\]]: n zero/nil elements *)
  | Eindex of expr * expr  (** [v\[i\]] *)
  | Elocate of expr  (** node id currently hosting the object *)
  | Ethisnode  (** node id executing this operation *)
  | Etimenow  (** virtual time, microseconds *)

type stmt = {
  s_pos : pos;
  s_desc : stmt_desc;
}

and stmt_desc =
  | Svar of string * typ * expr  (** [var x : t <- e] *)
  | Sassign of string * expr  (** [x <- e] *)
  | Sindex_assign of expr * expr * expr  (** [v\[i\] <- e] *)
  | Sexpr of expr  (** invocation for effect *)
  | Sif of (expr * stmt list) list * stmt list
  | Sloop of stmt list  (** [loop ... end loop] *)
  | Sexit of expr option  (** [exit] / [exit when e], inside a loop *)
  | Swhile of expr * stmt list
  | Sreturn
  | Smove of expr * expr  (** [move e to n] *)
  | Sprint of expr list
  | Swait of string * expr option
      (** [wait c] / [wait c timeout e]: block on a monitor condition,
          optionally giving up after [e] virtual microseconds *)
  | Ssignal of string
      (** [signal c] / [notify c]: move one waiter to the monitor entry
          queue (Mesa semantics: it re-acquires the monitor after the
          signaller leaves) *)
  | Snotifyall of string
      (** [notifyall c]: move every waiter to the monitor entry queue *)

type op_decl = {
  op_pos : pos;
  op_name : string;
  op_monitored : bool;
  op_params : (string * typ) list;
  op_results : (string * typ) list;  (** at most one *)
  op_body : stmt list;
}

type field_decl = {
  f_pos : pos;
  f_name : string;
  f_type : typ;
  f_attached : bool;
      (** attached fields move together with their enclosing object *)
  f_init : expr;
}

type class_decl = {
  c_pos : pos;
  c_name : string;
  c_fields : field_decl list;
  c_ops : op_decl list;
  c_conditions : (pos * string) list;
      (** monitor condition variables, usable only in monitored operations *)
  c_process : stmt list option;
      (** an Emerald process section: a thread of the object's own,
          started when the object is created (after [initially]) *)
}

type program = {
  prog_classes : class_decl list;
}

val typ_equal : typ -> typ -> bool
val typ_name : typ -> string
val pp_typ : Format.formatter -> typ -> unit
val binop_name : binop -> string
val no_pos : pos
