(* Optimization levels and per-instance edit provenance.

   A level names a code *instance*: the same operation compiled at two
   levels yields two bodies under one code OID, with identical bus-stop
   numbering and identical per-stop slot state (every optimization below
   preserves the canonical-slots-at-stops contract), but different
   instruction sequences between the stops.  The edit list records what
   each pass did to this instance, so tools (emdis --opt-diff) and the
   bridging machinery can explain why two instances differ. *)

type level =
  | O0  (* straight template code, one load/store per IR step *)
  | O1  (* register caching of variables + adjacent store/reload peephole *)
  | O2  (* O1 plus windowed redundant-load elimination and loop-poll
           elision in blocks already carrying a system-call bus stop *)

let to_int = function
  | O0 -> 0
  | O1 -> 1
  | O2 -> 2

let of_int = function
  | 0 -> O0
  | 1 -> O1
  | 2 -> O2
  | n -> invalid_arg (Printf.sprintf "Opt.of_int: no optimization level %d" n)

let to_string l = Printf.sprintf "O%d" (to_int l)
let compare a b = Int.compare (to_int a) (to_int b)
let equal a b = to_int a = to_int b
let ( >= ) a b = to_int a >= to_int b
let of_optimize b = if b then O1 else O0
let all = [ O0; O1; O2 ]

(* One optimizer edit, recorded while a pass runs.  [ed_index] is the
   instruction index in that pass's input buffer (passes run in sequence,
   so indices are per pass, not global); [ed_desc] is human-readable. *)
type edit = {
  ed_pass : string;  (* "peephole" | "rle" | "poll-elide" *)
  ed_index : int;
  ed_desc : string;
}

let pp_edit ppf e =
  Format.fprintf ppf "[%s @@ %d] %s" e.ed_pass e.ed_index e.ed_desc
