(** Top-level compiler driver.

    Compiles a source program once per requested architecture — and, when
    several optimization levels are requested, once per [(architecture,
    level)] pair — from a single shared IR, so bus-stop numbering,
    templates and code-object OIDs are identical across every code
    instance by construction — the discipline the paper's program database
    enforces for separate compilations (section 3.4). *)

type arch_artifact = {
  aa_arch : Isa.Arch.t;
  aa_level : Opt.level;  (** optimization level of this code instance *)
  aa_code : Isa.Code.t;
  aa_stops : Busstop.table;
  aa_edits : Opt.edit list;
      (** optimizer edit provenance, in application order (empty at -O0) *)
  aa_stop_live : Template.entity_slot list array;
      (** per bus stop, the live template slots — instance-invariant by the
          canonical-slots-at-stops discipline, recorded here so migration
          and disassembly need not consult the template *)
}

type compiled_class = {
  cc_name : string;
  cc_index : int;
  cc_oid : int32;
  cc_template : Template.class_t;
  cc_ir : Ir.class_ir;
  cc_levels : Opt.level list;  (** compiled levels; the head is primary *)
  cc_arts : ((string * Opt.level) * arch_artifact) list;
      (** code instances keyed by (architecture id, optimization level) *)
}

type program = {
  p_name : string;
  p_ir : Ir.program_ir;
  p_classes : compiled_class array;
}

val compile :
  ?db:Program_db.t ->
  ?optimize:bool ->
  ?levels:Opt.level list ->
  name:string ->
  archs:Isa.Arch.t list ->
  string ->
  (program, Diag.error list) result

val compile_exn :
  ?db:Program_db.t ->
  ?optimize:bool ->
  ?levels:Opt.level list ->
  name:string ->
  archs:Isa.Arch.t list ->
  string ->
  program
(** [levels] selects the code instances to build per architecture (first
    element is the primary level used by {!artifact}); when absent,
    [optimize] picks a single level ([false] is [-O0], [true] is [-O1]),
    preserving the historical interface.  Levels apply uniformly across a
    program's architectures, which this interface guarantees (the paper's
    prototype likewise ran identically optimized code everywhere,
    section 3).
    @raise Diag.Compile_error *)

val find_class : program -> string -> compiled_class option

val primary_level : compiled_class -> Opt.level
(** The head of [cc_levels] — what {!artifact} resolves to. *)

val artifact : compiled_class -> arch_id:string -> arch_artifact
(** The primary-level instance for the architecture.
    @raise Invalid_argument if the class was not compiled for it. *)

val artifact_at : compiled_class -> arch_id:string -> level:Opt.level -> arch_artifact option
(** The exact [(arch, level)] instance, if that instance was compiled. *)

val class_by_index : program -> int -> compiled_class
