module A = Isa.Arch
module R = Isa.Reg
module I = Isa.Insn
module O = Isa.Operand
module E = Codegen_common.Emitter

let fp = R.fp A.Sparc (* %i6 *)
let o0 = 8
let i0 = 24
let g0 = 0

let imm13_ok v = Int32.compare v (-4096l) >= 0 && Int32.compare v 4096l < 0

(* materialise an arbitrary 32-bit constant in a register *)
let load_imm em r v =
  if imm13_ok v then ignore (E.emit em (I.Mov (O.Imm v, O.Reg r)))
  else begin
    let hi = Int32.shift_right_logical v 10 in
    let lo = Int32.logand v 0x3FFl in
    ignore (E.emit em (I.Sethi (hi, r)));
    if not (Int32.equal lo 0l) then
      ignore (E.emit em (I.Bin3 (I.Or, O.Reg r, O.Imm lo, O.Reg r)))
  end

module Family : Codegen_common.FAMILY = struct
  let family = A.Sparc

  let frame_size ~n_slots ~n_scratch =
    let bytes = 4 * (n_slots + n_scratch) in
    (bytes + 7) land lnot 7 (* 8-byte stack alignment *)

  let slot_offset ~n_slots:_ s = -4 * (s + 1)
  let scratch_offset ~n_slots ~n_scratch:_ s = -4 * (n_slots + s + 1)

  (* the 64-byte register-window save area sits below the frame proper *)
  let fixed_sp_depth ~frame_size = 64 + frame_size
  let arg_push_bytes _ = 0
  let retval_reg = o0

  let prologue em ~frame_size ~param_offsets =
    ignore (E.emit em (I.Save frame_size));
    (* spill the register arguments (self in %i0) into their slots *)
    Array.iteri
      (fun i off ->
        ignore (E.emit em (I.Mov (O.Reg (i0 + i), O.Mem (O.Disp (fp, off))))))
      param_offsets

  let epilogue em ~result_offset =
    (match result_offset with
    | Some off -> ignore (E.emit em (I.Mov (O.Mem (O.Disp (fp, off)), O.Reg i0)))
    | None -> ());
    ignore (E.emit em I.Restore);
    ignore (E.emit em I.Retl)

  let load em ~dst ~src =
    match (src : Codegen_common.loc) with
    | Codegen_common.Lreg r ->
      if r <> dst then ignore (E.emit em (I.Mov (O.Reg r, O.Reg dst)))
    | Codegen_common.Limm v -> load_imm em dst v
    | Codegen_common.Lslot off ->
      ignore (E.emit em (I.Mov (O.Mem (O.Disp (fp, off)), O.Reg dst)))

  let store em ~src ~off =
    ignore (E.emit em (I.Mov (O.Reg src, O.Mem (O.Disp (fp, off)))))

  let store_loc em ~src ~off ~scratch =
    match (src : Codegen_common.loc) with
    | Codegen_common.Lreg r -> store em ~src:r ~off
    | Codegen_common.Limm 0l -> store em ~src:g0 ~off
    | Codegen_common.Limm _ | Codegen_common.Lslot _ ->
      let r = scratch () in
      load em ~dst:r ~src;
      store em ~src:r ~off

  let load_mem em ~dst ~base ~disp =
    ignore (E.emit em (I.Mov (O.Mem (O.Disp (base, disp)), O.Reg dst)))

  let store_mem em ~src ~base ~disp =
    ignore (E.emit em (I.Mov (O.Reg src, O.Mem (O.Disp (base, disp)))))

  (* a source operand for arithmetic: a register or a 13-bit immediate *)
  let source em ~scratch (l : Codegen_common.loc) : O.t =
    match l with
    | Codegen_common.Lreg r -> O.Reg r
    | Codegen_common.Limm v when imm13_ok v -> O.Imm v
    | Codegen_common.Limm _ | Codegen_common.Lslot _ ->
      let r = scratch () in
      load em ~dst:r ~src:l;
      O.Reg r

  let reg_source em ~scratch l =
    match source em ~scratch l with
    | O.Reg r -> O.Reg r
    | O.Imm v ->
      let r = scratch () in
      load_imm em r v;
      O.Reg r
    | O.Mem _ -> assert false

  let bin em op ~ty ~a ~b ~dst ~scratch =
    match ty with
    | Ir.Aint ->
      let oa = reg_source em ~scratch a in
      let ob = source em ~scratch b in
      ignore (E.emit em (I.Bin3 (op, oa, ob, O.Reg dst)))
    | Ir.Areal ->
      let oa = reg_source em ~scratch a in
      let ob = reg_source em ~scratch b in
      ignore (E.emit em (I.Fbin3 (op, oa, ob, O.Reg dst)))

  let neg em ~ty ~a ~dst ~scratch =
    let oa = reg_source em ~scratch a in
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Neg (oa, O.Reg dst)))
    | Ir.Areal -> ignore (E.emit em (I.Fneg (oa, O.Reg dst)))

  let cvt_int_real em ~a ~dst ~scratch =
    let oa = reg_source em ~scratch a in
    ignore (E.emit em (I.Cvt_if (oa, O.Reg dst)))

  let cmp em ~ty ~a ~b ~scratch =
    match ty with
    | Ir.Aint ->
      let oa = reg_source em ~scratch a in
      let ob = source em ~scratch b in
      ignore (E.emit em (I.Cmp (oa, ob)))
    | Ir.Areal ->
      let oa = reg_source em ~scratch a in
      let ob = reg_source em ~scratch b in
      ignore (E.emit em (I.Fcmp (oa, ob)))

  let invoke em ~target ~args ~method_index ~scratch =
    (* self and arguments travel in the out registers *)
    load em ~dst:o0 ~src:target;
    List.iteri (fun i a -> load em ~dst:(o0 + 1 + i) ~src:a) args;
    let rf = scratch () in
    load_mem em ~dst:rf ~base:o0 ~disp:Layout.obj_flags;
    ignore
      (E.emit em
         (I.Bin3 (I.And, O.Reg rf, O.Imm (Int32.of_int Layout.flag_resident), O.Reg rf)));
    ignore (E.emit em (I.Cmp (O.Reg rf, O.Imm 0l)));
    let l_local = E.fresh_label em and l_ret = E.fresh_label em in
    E.branch em (Some I.Ne) l_local;
    let alt_idx = E.emit em (I.Syscall Sysno.sys_invoke) in
    E.branch em None l_ret;
    E.place em l_local;
    load_mem em ~dst:rf ~base:o0 ~disp:Layout.obj_desc;
    load_mem em ~dst:rf ~base:rf ~disp:(Layout.desc_method method_index);
    ignore (E.emit em (I.Jsr_ind rf));
    (* delay-slot NOP; also the canonical resume PC of this stop *)
    let stop_idx = E.emit em I.Nop in
    E.place em l_ret;
    (stop_idx, alt_idx)

  let syscall em ~nr ~args ~scratch:_ =
    List.iteri (fun i a -> load em ~dst:(o0 + i) ~src:a) args;
    E.emit em (I.Syscall nr)

  let mon_exit em ~self ~scratch =
    load em ~dst:o0 ~src:self;
    let dequeue_idx = E.emit em (I.Syscall Sysno.sys_mon_exit_dequeue) in
    ignore (E.emit em (I.Cmp (O.Reg o0, O.Imm 0l)));
    let l_release = E.fresh_label em and l_done = E.fresh_label em in
    E.branch em (Some I.Eq) l_release;
    (* the dequeued waiter is already in %o0 *)
    let wake_idx = E.emit em (I.Syscall Sysno.sys_mon_wake) in
    E.branch em None l_done;
    E.place em l_release;
    let rs = scratch () in
    load em ~dst:rs ~src:self;
    (* store %g0: the classic SPARC way to write zero *)
    store_mem em ~src:g0 ~base:rs ~disp:Layout.obj_lock;
    E.place em l_done;
    {
      Codegen_common.me_dequeue_idx = dequeue_idx;
      me_dequeue_exit_only = false;
      me_dequeue_args = 1;
      me_wake_idx = wake_idx;
      me_wake_args = 1;
    }
end

module Driver = Codegen_common.Make (Family)

let compile_class = Driver.compile_class

let compile_class_at = Driver.compile_class_at
