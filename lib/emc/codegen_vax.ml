module A = Isa.Arch
module R = Isa.Reg
module I = Isa.Insn
module O = Isa.Operand
module E = Codegen_common.Emitter

let fp = R.fp A.Vax
let sp = R.sp A.Vax

let operand (l : Codegen_common.loc) : O.t =
  match l with
  | Codegen_common.Lreg r -> O.Reg r
  | Codegen_common.Limm v -> O.Imm v
  | Codegen_common.Lslot off -> O.Mem (O.Disp (fp, off))

module Family : Codegen_common.FAMILY = struct
  let family = A.Vax
  let frame_size ~n_slots ~n_scratch = 4 * (n_slots + n_scratch)
  let slot_offset ~n_slots:_ s = -4 * (s + 1)
  let scratch_offset ~n_slots ~n_scratch:_ s = -4 * (n_slots + s + 1)
  let fixed_sp_depth ~frame_size = frame_size
  let arg_push_bytes n = 4 * n
  let retval_reg = 0

  (* frame: [FP]=saved FP, [FP+4]=save mask, [FP+8]=return address,
     [FP+12]=self, [FP+16]=arg1, ... *)
  let prologue em ~frame_size ~param_offsets =
    ignore (E.emit em (I.Vax_entry frame_size));
    Array.iteri
      (fun i off ->
        ignore
          (E.emit em (I.Mov (O.Mem (O.Disp (fp, 12 + (4 * i))), O.Mem (O.Disp (fp, off))))))
      param_offsets

  let epilogue em ~result_offset =
    (match result_offset with
    | Some off -> ignore (E.emit em (I.Mov (O.Mem (O.Disp (fp, off)), O.Reg retval_reg)))
    | None -> ());
    ignore (E.emit em I.Vax_ret)

  let load em ~dst ~src = ignore (E.emit em (I.Mov (operand src, O.Reg dst)))
  let store em ~src ~off = ignore (E.emit em (I.Mov (O.Reg src, O.Mem (O.Disp (fp, off)))))

  let store_loc em ~src ~off ~scratch:_ =
    (* the VAX moves memory to memory directly *)
    ignore (E.emit em (I.Mov (operand src, O.Mem (O.Disp (fp, off)))))

  let load_mem em ~dst ~base ~disp =
    ignore (E.emit em (I.Mov (O.Mem (O.Disp (base, disp)), O.Reg dst)))

  let store_mem em ~src ~base ~disp =
    ignore (E.emit em (I.Mov (O.Reg src, O.Mem (O.Disp (base, disp)))))

  let bin em op ~ty ~a ~b ~dst ~scratch:_ =
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Bin3 (op, operand a, operand b, O.Reg dst)))
    | Ir.Areal -> ignore (E.emit em (I.Fbin3 (op, operand a, operand b, O.Reg dst)))

  let neg em ~ty ~a ~dst ~scratch:_ =
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Neg (operand a, O.Reg dst)))
    | Ir.Areal -> ignore (E.emit em (I.Fneg (operand a, O.Reg dst)))

  let cvt_int_real em ~a ~dst ~scratch:_ =
    ignore (E.emit em (I.Cvt_if (operand a, O.Reg dst)))

  let cmp em ~ty ~a ~b ~scratch:_ =
    match ty with
    | Ir.Aint -> ignore (E.emit em (I.Cmp (operand a, operand b)))
    | Ir.Areal -> ignore (E.emit em (I.Fcmp (operand a, operand b)))

  let invoke em ~target ~args ~method_index ~scratch =
    let rt = scratch () in
    load em ~dst:rt ~src:target;
    (* push arguments right to left, self (the target) last *)
    List.iter (fun a -> ignore (E.emit em (I.Push (operand a)))) (List.rev args);
    ignore (E.emit em (I.Push (O.Reg rt)));
    (* residency test on the descriptor flags *)
    let rf = scratch () in
    ignore
      (E.emit em
         (I.Bin3
            ( I.And,
              O.Mem (O.Disp (rt, Layout.obj_flags)),
              O.Imm (Int32.of_int Layout.flag_resident),
              O.Reg rf )));
    ignore (E.emit em (I.Cmp (O.Reg rf, O.Imm 0l)));
    let l_local = E.fresh_label em and l_ret = E.fresh_label em in
    E.branch em (Some I.Ne) l_local;
    let alt_idx = E.emit em (I.Syscall Sysno.sys_invoke) in
    E.branch em None l_ret;
    E.place em l_local;
    ignore (E.emit em (I.Mov (O.Mem (O.Disp (rt, Layout.obj_desc)), O.Reg rf)));
    ignore
      (E.emit em (I.Mov (O.Mem (O.Disp (rf, Layout.desc_method method_index)), O.Reg rf)));
    ignore (E.emit em (I.Jsr_ind rf));
    E.place em l_ret;
    let nargs = 1 + List.length args in
    let stop_idx =
      E.emit em (I.Bin3 (I.Add, O.Reg sp, O.Imm (Int32.of_int (4 * nargs)), O.Reg sp))
    in
    (stop_idx, alt_idx)

  let syscall em ~nr ~args ~scratch:_ =
    List.iter (fun a -> ignore (E.emit em (I.Push (operand a)))) (List.rev args);
    E.emit em (I.Syscall nr)

  let mon_exit em ~self ~scratch =
    let rs = scratch () in
    load em ~dst:rs ~src:self;
    let rq = scratch () in
    ignore
      (E.emit em
         (I.Bin3 (I.Add, O.Reg rs, O.Imm (Int32.of_int Layout.obj_qflink), O.Reg rq)));
    let rw = scratch () in
    (* the atomic unlink: single instruction, exit-only bus stop *)
    let dequeue_idx = E.emit em (I.Remque (rq, rw)) in
    ignore (E.emit em (I.Cmp (O.Reg rw, O.Imm 0l)));
    let l_release = E.fresh_label em and l_done = E.fresh_label em in
    E.branch em (Some I.Eq) l_release;
    ignore (E.emit em (I.Push (O.Reg rw)));
    let wake_idx = E.emit em (I.Syscall Sysno.sys_mon_wake) in
    E.branch em None l_done;
    E.place em l_release;
    ignore (E.emit em (I.Mov (O.Imm 0l, O.Mem (O.Disp (rs, Layout.obj_lock)))));
    E.place em l_done;
    {
      Codegen_common.me_dequeue_idx = dequeue_idx;
      me_dequeue_exit_only = true;
      me_dequeue_args = 0;
      me_wake_idx = wake_idx;
      me_wake_args = 1;
    }
end

module Driver = Codegen_common.Make (Family)

let compile_class = Driver.compile_class

let compile_class_at = Driver.compile_class_at
