(** The hash-partition map of the location directory.

    Stateless: [home] is a pure function of the OID and the cluster
    size, so every node computes every object's home partition without
    coordination. *)

type t

val create : n_nodes:int -> t
val nodes : t -> int

val home : t -> Ert.Oid.t -> int
(** The node whose directory shard is authoritative for this OID. *)
