(* One node's shard of the distributed location directory: the entries
   whose OIDs hash-partition to this node.  Each entry is the latest
   location the shard has heard of, stamped with the virtual time of the
   migration that produced it.

   Last-writer-wins by virtual timestamp is sound here: an object's
   successive moves happen sequentially along its trajectory, so their
   arrival timestamps strictly increase — a reordered (late, duplicated,
   retransmitted) update always carries an older stamp and is dropped.
   Stale entries are harmless in any case: a lookup answer is a hint,
   and the invoke it routes falls back to the forwarding-proxy walk at
   the hinted node. *)

type entry = {
  le_node : int;  (* last known location *)
  le_at : float;  (* virtual time of the migration that put it there *)
}

type t = {
  entries : entry Ert.Oid_table.t;
  mutable d_updates : int;  (* updates applied *)
  mutable d_stale : int;  (* updates dropped as older than the entry *)
  mutable d_hits : int;  (* lookups answered from an entry *)
  mutable d_misses : int;  (* lookups with no entry *)
}

let create () =
  {
    entries = Ert.Oid_table.create ~dummy:{ le_node = 0; le_at = 0.0 } ();
    d_updates = 0;
    d_stale = 0;
    d_hits = 0;
    d_misses = 0;
  }

let length t = Ert.Oid_table.length t.entries

let update t oid ~node ~at =
  match Ert.Oid_table.find_opt t.entries oid with
  | Some e when e.le_at > at ->
    t.d_stale <- t.d_stale + 1;
    false
  | Some _ | None ->
    Ert.Oid_table.replace t.entries oid { le_node = node; le_at = at };
    t.d_updates <- t.d_updates + 1;
    true

let lookup t oid =
  match Ert.Oid_table.find_opt t.entries oid with
  | Some e ->
    t.d_hits <- t.d_hits + 1;
    Some e
  | None ->
    t.d_misses <- t.d_misses + 1;
    None

let peek t oid = Ert.Oid_table.find_opt t.entries oid
let remove t oid = Ert.Oid_table.remove t.entries oid

let clear t =
  (* rebuild support: drop every entry (a restarted node lost its shard)
     without resetting the counters, which survive as node statistics *)
  let oids = Ert.Oid_table.fold (fun oid _ acc -> oid :: acc) t.entries [] in
  List.iter (Ert.Oid_table.remove t.entries) oids

let iter f t = Ert.Oid_table.iter (fun oid e -> f oid e) t.entries
let updates t = t.d_updates
let stale_dropped t = t.d_stale
let hits t = t.d_hits
let misses t = t.d_misses
