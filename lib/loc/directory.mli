(** One node's shard of the distributed location directory.

    Entries map OIDs (those whose {!Partition.home} is this node) to
    their last known location, stamped with the virtual time of the
    migration that put them there.  Updates apply last-writer-wins by
    timestamp — sound because an object's successive moves are
    sequential, so genuine updates carry strictly increasing stamps and
    anything older is a reordered duplicate. *)

type entry = {
  le_node : int;  (** last known location *)
  le_at : float;  (** virtual time of the migration that put it there *)
}

type t

val create : unit -> t
val length : t -> int

val update : t -> Ert.Oid.t -> node:int -> at:float -> bool
(** Apply a location update; [false] means it was older than the
    current entry and was dropped. *)

val lookup : t -> Ert.Oid.t -> entry option
(** Authoritative-shard lookup (counts a hit or miss). *)

val peek : t -> Ert.Oid.t -> entry option
(** [lookup] without touching the hit/miss counters (host-side
    inspection, invariant checks). *)

val remove : t -> Ert.Oid.t -> unit

val clear : t -> unit
(** Drop every entry (crash rebuild); statistics survive. *)

val iter : (Ert.Oid.t -> entry -> unit) -> t -> unit
val updates : t -> int
val stale_dropped : t -> int
val hits : t -> int
val misses : t -> int
