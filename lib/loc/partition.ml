(* The partition map: every OID hashes to one deterministic home node
   whose directory shard records the object's current location.  The map
   is a pure function of (oid, cluster size) — no state, no rebalancing
   — so any node computes any object's home without coordination, and
   the assignment is identical at every shard count and across runs. *)

type t = { pm_nodes : int }

let create ~n_nodes =
  if n_nodes <= 0 then invalid_arg "Partition.create: need a positive node count";
  { pm_nodes = n_nodes }

let nodes t = t.pm_nodes

(* SplitMix64-style finalizer over the interned OID: creator and serial
   both live in the low 30 bits, so without mixing, blocks of
   consecutive serials would stripe across consecutive homes and a hot
   creator node would load its neighbourhood.  The avalanche spreads
   each creator's objects over the whole cluster. *)
let mix x =
  let x = Int64.of_int x in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let home t oid =
  Int64.to_int (Int64.rem (Int64.logand (mix (Ert.Oid.intern oid)) Int64.max_int)
                  (Int64.of_int t.pm_nodes))
