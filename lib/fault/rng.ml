(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast,
   well-distributed generator whose state is one 64-bit word — and whose
   output function is a pure mix of the state, so [split] can seed an
   independent stream from a single draw. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (next_int64 t) }
let copy t = { state = t.state }

(* 53 high bits -> uniform float in [0,1) *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free modulo is fine here: bounds are tiny (node counts,
     workload choices) against a 64-bit stream *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let bool t ~p = if p <= 0.0 then false else if p >= 1.0 then true else float t < p
