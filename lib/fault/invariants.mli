(** Cluster-wide correctness invariants, checkable between events.

    Between any two events every segment is parked at a bus stop and no
    kernel is mid-transition, so global properties of the simulated
    world are well defined.  These checkers are the oracle `emfuzz`
    sweeps fault plans against; the cluster also exposes them behind
    [emrun --check-invariants].

    Checked here (kernel-observable state only):
    - {b unique residency}: at most one node holds a resident (non-proxy)
      copy of any object.  An object may legitimately be resident nowhere
      while a move payload is in flight — and permanently nowhere once a
      loss was reported — so absence is not a violation; duplication
      (the failure mode of unsuppressed retransmits) is.
    - {b no orphaned segments}: no registered segment is [Dead], and no
      registered segment belongs to a thread already reported lost.
    - {b monitor/condition queue integrity}: a monitor's entry queue
      holds only registered segments blocked on that monitor; a lock
      with queued waiters must actually be held.
    - {b virtual-time monotonicity}: no node's clock ever runs backwards
      between checks ([last_times] carries the previous observation and
      is updated in place). *)

type violation = {
  v_invariant : string;  (** short invariant name *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  n_nodes:int ->
  kernel:(int -> Ert.Kernel.t) ->
  crashed:(int -> bool) ->
  thread_failed:(Ert.Thread.tid -> bool) ->
  last_times:float array ->
  violation list
(** Run every checker over the live nodes; returns all violations found
    (empty = healthy).  [last_times] must be owned by the caller and
    reused across calls for the monotonicity check. *)
