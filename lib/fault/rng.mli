(** A seeded, splittable pseudo-random number generator (SplitMix64).

    Every random decision in the fault-injection subsystem draws from one
    of these streams, never from wall-clock time or [Stdlib.Random]: two
    runs from the same seed make bit-identical decisions, which is what
    lets `emfuzz` replay and shrink a failing schedule.

    [split] derives an independent stream deterministically, so the wire
    faults, the crash schedule and the workload generator each consume
    their own stream — adding a draw to one cannot perturb the others. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new stream whose future draws are independent of (but fully
    determined by) the parent's state at the split point. *)

val copy : t -> t

val next_int64 : t -> int64
(** The raw 64-bit SplitMix64 output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> p:float -> bool
(** [true] with probability [p]. *)
