type partition = {
  pt_a : int list;
  pt_b : int list;
  pt_from_us : float;
  pt_until_us : float;
}

type chaos = {
  ch_node : int;
  ch_crash_at_us : float;
  ch_restart_at_us : float option;
}

type t = {
  pl_seed : int;
  pl_drop : float;
  pl_dup : float;
  pl_delay_p : float;
  pl_delay_us : float;
  pl_partitions : partition list;
  pl_chaos : chaos list;
}

let empty =
  {
    pl_seed = 0;
    pl_drop = 0.0;
    pl_dup = 0.0;
    pl_delay_p = 0.0;
    pl_delay_us = 0.0;
    pl_partitions = [];
    pl_chaos = [];
  }

let make ?(seed = 0) ?(drop = 0.0) ?(dup = 0.0) ?(delay_p = 0.0) ?(delay_us = 0.0)
    ?(partitions = []) ?(chaos = []) () =
  {
    pl_seed = seed;
    pl_drop = drop;
    pl_dup = dup;
    pl_delay_p = delay_p;
    pl_delay_us = delay_us;
    pl_partitions = partitions;
    pl_chaos = chaos;
  }

let is_trivial t =
  t.pl_drop <= 0.0 && t.pl_dup <= 0.0
  && (t.pl_delay_p <= 0.0 || t.pl_delay_us <= 0.0)
  && t.pl_partitions = [] && t.pl_chaos = []

let with_seed t seed = { t with pl_seed = seed }

let partitioned t ~src ~dst ~now_us =
  List.exists
    (fun p ->
      now_us >= p.pt_from_us && now_us < p.pt_until_us
      && ((List.mem src p.pt_a && List.mem dst p.pt_b)
         || (List.mem src p.pt_b && List.mem dst p.pt_a)))
    t.pl_partitions

(* The draw order (drop, then dup, then delay) is fixed and every branch
   consumes the same number of stream values, so one message's fate never
   shifts another's — a prerequisite for greedy plan shrinking to keep
   later faults stable when an earlier knob is zeroed. *)
let wire_fault t ~rng ~src ~dst ~now_us =
  if partitioned t ~src ~dst ~now_us then Some Enet.Netsim.Fault_drop
  else if t.pl_drop <= 0.0 && t.pl_dup <= 0.0 && (t.pl_delay_p <= 0.0 || t.pl_delay_us <= 0.0)
  then None
  else begin
    let u_drop = Rng.float rng in
    let u_dup = Rng.float rng in
    let u_delay = Rng.float rng in
    let u_amount = Rng.float rng in
    if u_drop < t.pl_drop then Some Enet.Netsim.Fault_drop
    else if u_dup < t.pl_dup then
      Some (Enet.Netsim.Fault_dup (u_amount *. Float.max t.pl_delay_us 1000.0))
    else if u_delay < t.pl_delay_p && t.pl_delay_us > 0.0 then
      Some (Enet.Netsim.Fault_delay (u_amount *. t.pl_delay_us))
    else None
  end

(* ---------------------------------------------------------------- *)
(* spec syntax *)

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not a number: %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not an integer: %S" what s)

let ( let* ) r f = Result.bind r f

let parse_group what s =
  let parts = String.split_on_char '+' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* n = parse_int what p in
      go (n :: acc) rest
  in
  go [] parts

let parse_partition s =
  match String.index_opt s '@' with
  | None -> Error "part: expected A|B@FROM:UNTIL"
  | Some at -> (
    let groups = String.sub s 0 at in
    let window = String.sub s (at + 1) (String.length s - at - 1) in
    match String.index_opt groups '|' with
    | None -> Error "part: expected two node groups separated by |"
    | Some bar ->
      let* a = parse_group "part" (String.sub groups 0 bar) in
      let* b =
        parse_group "part" (String.sub groups (bar + 1) (String.length groups - bar - 1))
      in
      let* from_us, until_us =
        match String.split_on_char ':' window with
        | [ f ] ->
          let* f = parse_float "part from" f in
          Ok (f, infinity)
        | [ f; u ] ->
          let* f = parse_float "part from" f in
          let* u = parse_float "part until" u in
          Ok (f, u)
        | _ -> Error "part: expected FROM or FROM:UNTIL"
      in
      Ok { pt_a = a; pt_b = b; pt_from_us = from_us; pt_until_us = until_us })

let parse_chaos s =
  match String.index_opt s '@' with
  | None -> Error "crash: expected NODE@T or NODE@T:RESTART"
  | Some at ->
    let* node = parse_int "crash node" (String.sub s 0 at) in
    let window = String.sub s (at + 1) (String.length s - at - 1) in
    let* crash_at, restart =
      match String.split_on_char ':' window with
      | [ c ] ->
        let* c = parse_float "crash time" c in
        Ok (c, None)
      | [ c; r ] ->
        let* c = parse_float "crash time" c in
        let* r = parse_float "restart time" r in
        Ok (c, Some r)
      | _ -> Error "crash: expected T or T:RESTART"
    in
    Ok { ch_node = node; ch_crash_at_us = crash_at; ch_restart_at_us = restart }

let of_string spec =
  let fields =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] ->
      Ok
        { acc with
          pl_partitions = List.rev acc.pl_partitions;
          pl_chaos = List.rev acc.pl_chaos }
    | field :: rest -> (
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "plan: expected key=value, got %S" field)
      | Some eq -> (
        let key = String.sub field 0 eq in
        let value = String.sub field (eq + 1) (String.length field - eq - 1) in
        match key with
        | "seed" ->
          let* v = parse_int "seed" value in
          go { acc with pl_seed = v } rest
        | "drop" ->
          let* v = parse_float "drop" value in
          go { acc with pl_drop = v } rest
        | "dup" ->
          let* v = parse_float "dup" value in
          go { acc with pl_dup = v } rest
        | "delay" -> (
          match String.split_on_char ':' value with
          | [ p; us ] ->
            let* p = parse_float "delay probability" p in
            let* us = parse_float "delay max us" us in
            go { acc with pl_delay_p = p; pl_delay_us = us } rest
          | _ -> Error "delay: expected P:MAXUS")
        | "part" ->
          let* p = parse_partition value in
          go { acc with pl_partitions = p :: acc.pl_partitions } rest
        | "crash" ->
          let* c = parse_chaos value in
          go { acc with pl_chaos = c :: acc.pl_chaos } rest
        | _ -> Error (Printf.sprintf "plan: unknown key %S" key)))
  in
  go empty fields

let group_to_string g = String.concat "+" (List.map string_of_int g)

let to_string t =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s) fmt
  in
  if t.pl_seed <> 0 then add "seed=%d" t.pl_seed;
  if t.pl_drop > 0.0 then add "drop=%g" t.pl_drop;
  if t.pl_dup > 0.0 then add "dup=%g" t.pl_dup;
  if t.pl_delay_p > 0.0 && t.pl_delay_us > 0.0 then
    add "delay=%g:%g" t.pl_delay_p t.pl_delay_us;
  List.iter
    (fun p ->
      if p.pt_until_us = infinity then
        add "part=%s|%s@%g" (group_to_string p.pt_a) (group_to_string p.pt_b)
          p.pt_from_us
      else
        add "part=%s|%s@%g:%g" (group_to_string p.pt_a) (group_to_string p.pt_b)
          p.pt_from_us p.pt_until_us)
    t.pl_partitions;
  List.iter
    (fun c ->
      match c.ch_restart_at_us with
      | None -> add "crash=%d@%g" c.ch_node c.ch_crash_at_us
      | Some r -> add "crash=%d@%g:%g" c.ch_node c.ch_crash_at_us r)
    t.pl_chaos;
  Buffer.contents b

let describe t =
  if is_trivial t then "no faults (reliable wire)"
  else
    Printf.sprintf
      "seed %d: drop %.0f%%, dup %.0f%%, delay %.0f%% (<=%.0fus), %d partition(s), %d crash window(s)"
      t.pl_seed (t.pl_drop *. 100.0) (t.pl_dup *. 100.0) (t.pl_delay_p *. 100.0)
      t.pl_delay_us
      (List.length t.pl_partitions)
      (List.length t.pl_chaos)
