(** A deterministic fault plan: what the simulated world does to the
    protocol, scheduled entirely in virtual time and seeded randomness.

    A plan describes per-message wire faults (drop / duplicate / extra
    delay, drawn from a {!Rng} stream), link-level network partitions
    with heal times, and node crash/restart windows.  The same plan and
    seed always produce the same faults at the same points of the event
    sequence — a failing run is a (seed, plan) pair, nothing more.

    The empty plan is special-cased throughout the stack: a cluster
    created with [Plan.empty] (or no plan at all) takes exactly the
    reliable-wire fast path and its event sequence is bit-identical to a
    cluster with no fault subsystem at all. *)

type partition = {
  pt_a : int list;  (** one side of the cut *)
  pt_b : int list;  (** the other side *)
  pt_from_us : float;
  pt_until_us : float;  (** heal time; [infinity] = never heals *)
}

type chaos = {
  ch_node : int;
  ch_crash_at_us : float;
  ch_restart_at_us : float option;  (** [None] = stays down *)
}

type t = {
  pl_seed : int;
  pl_drop : float;  (** per-message loss probability *)
  pl_dup : float;  (** per-message duplication probability *)
  pl_delay_p : float;  (** probability of extra delivery delay *)
  pl_delay_us : float;  (** maximum extra delay (uniform in [0, max)) *)
  pl_partitions : partition list;
  pl_chaos : chaos list;
}

val empty : t

val make :
  ?seed:int ->
  ?drop:float ->
  ?dup:float ->
  ?delay_p:float ->
  ?delay_us:float ->
  ?partitions:partition list ->
  ?chaos:chaos list ->
  unit ->
  t

val is_trivial : t -> bool
(** No fault can ever fire: the cluster may (and does) skip the whole
    reliability layer, keeping the fault-free fast path byte-identical. *)

val with_seed : t -> int -> t

val partitioned : t -> src:int -> dst:int -> now_us:float -> bool
(** Is the src->dst link cut at this instant? *)

val wire_fault : t -> rng:Rng.t -> src:int -> dst:int -> now_us:float -> Enet.Netsim.fault option
(** Draw this message's fate.  Partition cuts are checked first (they
    consume no randomness); then drop, duplicate and delay draws are
    made in a fixed order so the stream stays aligned across runs. *)

val of_string : string -> (t, string) result
(** Parse a plan spec, a comma-separated key=value list:

    {v
    seed=42,drop=0.3,dup=0.05,delay=0.1:2000,
    part=0+1|2+3@1000:50000,crash=2@3000,crash=1@5000:9000
    v}

    [delay=P:MAXUS] delays a message with probability P by up to MAXUS
    virtual microseconds.  [part=A|B@FROM:UNTIL] cuts every link between
    node groups A and B (nodes joined by [+]) during the window.
    [crash=N@T] fail-stops node N at virtual time T;
    [crash=N@T:R] restarts it (empty, amnesiac) at time R. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val describe : t -> string
(** A one-line human summary for [--stats] output. *)
