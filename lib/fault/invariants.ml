module K = Ert.Kernel
module T = Ert.Thread

type violation = {
  v_invariant : string;
  v_detail : string;
}

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.v_invariant v.v_detail

let v name fmt = Format.kasprintf (fun detail -> { v_invariant = name; v_detail = detail }) fmt

(* at most one resident (non-proxy) copy of any object, across all live
   nodes *)
let check_unique_residency ~n_nodes ~kernel ~crashed acc =
  let home : (Ert.Oid.t, int) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref acc in
  for i = 0 to n_nodes - 1 do
    if not (crashed i) then begin
      let k = kernel i in
      List.iter
        (fun (oid, addr) ->
          if K.is_resident k addr then
            match Hashtbl.find_opt home oid with
            | None -> Hashtbl.replace home oid i
            | Some j ->
              acc :=
                v "unique-residency" "object %s resident on both node %d and node %d"
                  (Ert.Oid.to_string oid) j i
                :: !acc)
        (K.objects k)
    end
  done;
  !acc

(* no registered segment is dead, and none belongs to a thread whose loss
   has already been reported — a resurrected segment would run a
   continuation the cluster promised was gone *)
let check_no_orphans ~n_nodes ~kernel ~crashed ~thread_failed acc =
  let acc = ref acc in
  for i = 0 to n_nodes - 1 do
    if not (crashed i) then
      List.iter
        (fun (seg : T.segment) ->
          (match seg.T.seg_status with
          | T.Dead ->
            acc := v "no-orphans" "node %d holds a registered dead segment %d" i seg.T.seg_id :: !acc
          | _ -> ());
          if seg.T.seg_status <> T.Dead && thread_failed seg.T.seg_thread then
            acc :=
              v "no-orphans" "node %d: segment %d of thread %d is live, but the thread was reported lost"
                i seg.T.seg_id seg.T.seg_thread
              :: !acc)
        (K.segments (kernel i))
  done;
  !acc

(* every queued monitor waiter is a registered segment blocked on that
   very monitor, and a monitor with waiters is actually locked *)
let check_monitors ~n_nodes ~kernel ~crashed acc =
  let acc = ref acc in
  for i = 0 to n_nodes - 1 do
    if not (crashed i) then begin
      let k = kernel i in
      List.iter
        (fun (oid, addr) ->
          if K.is_resident k addr then begin
            let waiters = K.monitor_waiters k ~obj_addr:addr in
            List.iter
              (fun (seg : T.segment) ->
                (match K.find_segment k seg.T.seg_id with
                | Some _ -> ()
                | None ->
                  acc :=
                    v "monitor-integrity"
                      "node %d: monitor of %s queues unregistered segment %d" i
                      (Ert.Oid.to_string oid) seg.T.seg_id
                    :: !acc);
                match seg.T.seg_status with
                | T.Blocked_monitor { mon_addr; _ } when mon_addr = addr -> ()
                | st ->
                  acc :=
                    v "monitor-integrity"
                      "node %d: monitor of %s queues segment %d in state %a" i
                      (Ert.Oid.to_string oid) seg.T.seg_id T.pp_status st
                    :: !acc)
              waiters;
            if waiters <> [] && not (K.monitor_locked k ~obj_addr:addr) then
              acc :=
                v "monitor-integrity" "node %d: monitor of %s has waiters but is unlocked"
                  i (Ert.Oid.to_string oid)
                :: !acc
          end)
        (K.objects k)
    end
  done;
  !acc

let check_time ~n_nodes ~kernel ~last_times acc =
  let acc = ref acc in
  for i = 0 to n_nodes - 1 do
    let now = K.time_us (kernel i) in
    if now < last_times.(i) then
      acc :=
        v "time-monotonicity" "node %d clock ran backwards: %.3fus after %.3fus" i now
          last_times.(i)
        :: !acc;
    last_times.(i) <- Float.max now last_times.(i)
  done;
  !acc

let check ~n_nodes ~kernel ~crashed ~thread_failed ~last_times =
  []
  |> check_unique_residency ~n_nodes ~kernel ~crashed
  |> check_no_orphans ~n_nodes ~kernel ~crashed ~thread_failed
  |> check_monitors ~n_nodes ~kernel ~crashed
  |> check_time ~n_nodes ~kernel ~last_times
  |> List.rev
