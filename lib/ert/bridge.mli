(** Per-node cache of compiled bridge fragments.

    The paper's bridging mechanism (section 2.4) for migration between
    differently-optimized code instances: when an arriving thread is
    parked at a bus stop the target instance elided (-O2 loop-poll
    elision), the kernel synthesizes a fragment of real target-ISA code
    — [Poll stop; Jmp_abs resume] — that re-enters the instance at the
    stop's state-equivalence point without executing any source-level
    action.  Fragments are cached per (class code OID, stop id) and
    loaded into text under synthetic negative code OIDs (program OIDs
    are positive, so the spaces are disjoint). *)

type frag = {
  fg_oid : int32;  (** synthetic (negative) code OID of the loaded fragment *)
  fg_class_index : int;
  fg_stop_id : int;
  fg_base : int;  (** absolute address of the fragment's first instruction *)
}

type t

val create : unit -> t

val fresh_oid : t -> int32
(** Next synthetic fragment OID (negative, node-local). *)

val is_frag_oid : int32 -> bool
(** True for synthetic fragment OIDs (negative). *)

val find : t -> code_oid:int32 -> stop_id:int -> frag option
(** Cache lookup; counts a hit or a miss. *)

val add : t -> code_oid:int32 -> frag -> unit
(** Register a freshly generated fragment under the class's code OID. *)

val of_frag_oid : t -> int32 -> frag option
(** Resolve a fragment by its synthetic OID (PC-to-stop resolution for
    threads suspended inside a bridge). *)

val clear : t -> unit
(** Drop every fragment (hit/miss counters and the OID serial survive):
    fragment addresses point into kernel text, so a node restart must
    void them before reusing the cache. *)

val count : t -> int
val hits : t -> int
val misses : t -> int
