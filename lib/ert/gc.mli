(** Mark-sweep garbage collection over a node's heap.

    The collector runs between scheduling slices, when every thread
    segment is suspended at a bus stop; the per-stop templates then
    identify exactly which activation-record slots hold pointers —
    "in Emerald, this technique is also used to provide the garbage
    collector with well-defined states for easy pointer identification"
    (section 2.2.1).

    Collected: object descriptors, proxies, string and vector blocks.
    Roots: live pointer slots of every suspended frame, pending machine-
    independent values attached to segments (spawn arguments, undelivered
    results), monitor objects with queued waiters, root-thread results
    not yet read by the harness, and the code objects' string literals.
    Kernel-owned structures (descriptor tables, monitor queue nodes,
    stacks) are not subject to collection.

    Two tiers share the root scan and field tracing:

    - {!collect} is the stop-the-world tier: one call marks and sweeps
      the whole heap.
    - {!start}/{!step} run the same collection as an incremental
      tri-color cycle (DESIGN.md §17): snapshot-at-beginning with an
      array-backed color map, a combined Yuasa+Dijkstra write barrier on
      the node's 32-bit stores, allocate-black for blocks created
      mid-cycle, and a kernel graft hook for addresses that reach
      registers without a store.  Each {!step} call scans at most
      [budget] pointer slots (after the first, which scans the whole
      root set — proportional to suspended segments, not heap size), so
      the caller can interleave increments with execution and charge
      virtual time per increment. *)

type stats = {
  gc_live : int;  (** blocks marked reachable *)
  gc_swept : int;  (** blocks reclaimed *)
  gc_bytes_freed : int;
}

val collect : ?extra_roots:Oid.t list -> ?extra_addrs:int list -> Kernel.t -> stats
(** [extra_roots] pins objects held by the embedding harness (objects are
    otherwise reachable only through thread state and other objects);
    [extra_addrs] pins raw block addresses the same way.
    @raise Kernel.Runtime_error if a segment is running (collect only
    between scheduling slices). *)

type cycle
(** An in-progress incremental collection on one kernel.  While a cycle
    is live the kernel's memory carries the write barrier and its graft
    hook is installed; {!step} to completion, or {!abort} (e.g. on node
    crash), detaches both. *)

type phase =
  | Proots  (** about to scan the root set (first increment) *)
  | Pmark  (** draining the grey worklist *)
  | Psweep  (** freeing unmarked snapshot blocks *)

val phase_name : phase -> string
(** ["gc_roots"], ["gc_mark"], ["gc_sweep"] — span/histogram keys. *)

type progress =
  | Step_more of { scanned : int; phase : phase }
      (** the increment scanned [scanned] slots and the cycle continues
          in [phase] *)
  | Step_done of { scanned : int; stats : stats }
      (** the sweep finished (after scanning [scanned] more slots);
          hooks are detached *)

val start : ?extra_roots:Oid.t list -> ?extra_addrs:int list -> Kernel.t -> cycle
(** Snapshot the block population, whiten it, and install the write
    barrier and graft hook.  No scanning happens yet; the first {!step}
    scans the roots (the node must be quiesced for that call, exactly as
    for {!collect}). *)

val step : cycle -> Kernel.t -> budget:int -> progress
(** Run one bounded increment ([budget] is clamped to at least 1 slot).
    After [Step_done] the cycle must not be stepped again. *)

val abort : cycle -> Kernel.t -> unit
(** Discard the cycle's mark state and detach the barrier and graft
    hook — the crash-mid-cycle path; the next cycle starts from
    scratch, exactly like the location directory's soft-state rule. *)

val grey_segment : cycle -> Kernel.t -> Thread.segment -> unit
(** Migration send-off: grey the departing segment's current roots
    before it is captured out of the root set. *)

val grey_addr : cycle -> Kernel.t -> int -> unit
(** Grey one block address (no-op for addresses outside the snapshot or
    already marked). *)

val cycle_phase : cycle -> phase

val segment_roots : Kernel.t -> Thread.segment -> int list
(** The block addresses a suspended segment keeps live (frame slots via
    the bus-stop templates, suspension values, monitor-waiter state, or
    — for a never-dispatched segment — its spawn target and
    arguments). *)
