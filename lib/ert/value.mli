(** Machine-independent values.

    The common currency of remote invocation and migration: typed values
    in no particular machine's representation.  Converting a raw 32-bit
    machine word to and from a [Value.t] (done in {!Kernel}) is where byte
    order, float format and pointer swizzling happen. *)

type t =
  | Vint of int32
  | Vreal of float
  | Vbool of bool
  | Vstr of string
  | Vref of Oid.t
  | Vvec of Emc.Ast.typ * t array
      (** vectors marshal by value: element type and elements *)
  | Vnil

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val type_name : t -> string

val write : Enet.Wire.Writer.t -> t -> unit
(** Tagged network-format encoding. *)

val read : Enet.Wire.Reader.t -> t
(** @raise Failure on a corrupt tag. *)

val write_typ : Enet.Wire.Writer.t -> Emc.Ast.typ -> unit
val read_typ : Enet.Wire.Reader.t -> Emc.Ast.typ

(** Blit-tier codec: byte-identical to {!write}/{!read} but through the
    uncharged raw wire primitives; the caller accounts a whole blitted
    frame or object with one [Wire.Writer.add_charge]. *)

val write_raw : Enet.Wire.Writer.t -> t -> unit
val read_raw : Enet.Wire.Reader.t -> t
val write_typ_raw : Enet.Wire.Writer.t -> Emc.Ast.typ -> unit
val read_typ_raw : Enet.Wire.Reader.t -> Emc.Ast.typ

(** Wire tag bytes of {!write}'s encoding, exposed so compiled
    conversion plans ({!Mobility.Conv_plan}) can bake them into fused
    skeletons. *)

val tag_int : int
val tag_real : int
val tag_bool : int
val tag_str : int
val tag_ref : int
val tag_nil : int
val tag_vec : int
