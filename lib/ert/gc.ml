module Mem = Isa.Memory
module L = Emc.Layout
module T = Thread

type stats = {
  gc_live : int;
  gc_swept : int;
  gc_bytes_freed : int;
}

let rec value_root k v acc =
  match (v : Value.t) with
  | Value.Vref oid -> (
    match Kernel.find_object k oid with
    | Some addr -> addr :: acc
    | None -> (
      match Kernel.proxy_of k oid with
      | Some addr -> addr :: acc
      | None -> acc))
  | Value.Vvec (_, xs) -> Array.fold_left (fun acc x -> value_root k x acc) acc xs
  | Value.Vint _ | Value.Vreal _ | Value.Vbool _ | Value.Vstr _ | Value.Vnil -> acc

let suspension_roots k (s : T.suspension) acc =
  match s with
  | Isa.Suspend.Deliver v -> value_root k v acc
  | Isa.Suspend.Complete v ->
    Option.fold ~none:acc ~some:(fun v -> value_root k v acc) v
  | Isa.Suspend.Run | Isa.Suspend.Complete_dequeue _ | Isa.Suspend.Poll
  | Isa.Suspend.Syscall _ | Isa.Suspend.Bottom_return | Isa.Suspend.Halt
  | Isa.Suspend.Trap _ | Isa.Suspend.Fuel -> acc

(* roots carried by the waiting state itself, beyond any frame slot: a
   waiter queued on a monitor keeps the monitor's object alive even when
   no live slot still holds the reference (the entry sequence may have
   consumed it), and sweeping it would leave the wake path reading freed
   memory.  [Awaiting_reply] carries only the machine-independent stop
   id — the pending value lives on the replying node until
   [deliver_result] lands it. *)
let status_roots (st : T.status) acc =
  match st with
  | T.Blocked_monitor { mon_addr; _ } -> mon_addr :: acc
  | T.Parked _ | T.Running | T.Awaiting_reply _ | T.Dead -> acc

let segment_roots k (seg : T.segment) =
  match seg.T.seg_spawn with
  | Some spawn ->
    let acc = value_root k (Value.Vref spawn.T.si_target) [] in
    let acc = List.fold_left (fun acc v -> value_root k v acc) acc spawn.T.si_args in
    status_roots seg.T.seg_status acc
  | None ->
    let frames = Frame_walk.walk k seg in
    let acc =
      List.concat_map
        (fun fr -> List.map fst (Frame_walk.live_pointer_slots k fr))
        frames
    in
    (match seg.T.seg_status with
    | T.Parked s -> suspension_roots k s acc
    | T.Running -> raise (Kernel.Runtime_error "gc: segment is running")
    | T.Blocked_monitor _ | T.Awaiting_reply _ | T.Dead ->
      status_roots seg.T.seg_status acc)

(* root-thread results already delivered but not yet read by the
   embedding harness: the value may still name local blocks *)
let harness_result_roots k acc =
  let acc = ref acc in
  Kernel.iter_root_results k (fun _tid v ->
      match v with
      | Some v -> acc := value_root k v !acc
      | None -> ());
  !acc

let field_pointers k addr =
  if Kernel.is_vector_block k addr then Kernel.vector_pointer_elements k addr
  else if not (Kernel.is_resident k addr) then []
  else begin
    let class_index = Kernel.class_of_object k addr in
    let lc = Kernel.loaded_class k class_index in
    let fields = lc.Kernel.lc_class.Emc.Compile.cc_template.Emc.Template.ct_fields in
    let mem = Kernel.mem k in
    Array.to_list fields
    |> List.mapi (fun i (_, ty) -> (i, ty))
    |> List.filter_map (fun (i, ty) ->
           if Emc.Ir.is_pointer_type ty then
             (* unsigned read: a signed fold of a high-bit address would
                never match a block and the mark would be missed *)
             let a = Mem.load32_bits mem (addr + L.field_offset i) in
             if a = 0 then None else Some a
           else None)
  end

let extra_root_addrs k ~extra_roots ~extra_addrs =
  List.fold_left
    (fun acc oid ->
      match Kernel.find_object k oid with
      | Some addr -> addr :: acc
      | None -> (
        match Kernel.proxy_of k oid with
        | Some addr -> addr :: acc
        | None -> acc))
    extra_addrs extra_roots

let collect ?(extra_roots = []) ?(extra_addrs = []) k =
  let marked = Hashtbl.create 64 in
  let known = Hashtbl.create 64 in
  Kernel.iter_blocks k (fun ~addr ~size:_ ~kind:_ -> Hashtbl.replace known addr ());
  let worklist = ref [] in
  let mark addr =
    if Hashtbl.mem known addr && not (Hashtbl.mem marked addr) then begin
      Hashtbl.replace marked addr ();
      worklist := addr :: !worklist
    end
  in
  (* roots: suspended thread state (via the bus-stop templates) and the
     code objects' string literals *)
  List.iter (fun seg -> List.iter mark (segment_roots k seg)) (Kernel.segments k);
  List.iter mark (Kernel.string_literal_addrs k);
  List.iter mark (extra_root_addrs k ~extra_roots ~extra_addrs);
  List.iter mark (harness_result_roots k []);
  (* trace *)
  let rec drain () =
    match !worklist with
    | [] -> ()
    | addr :: rest ->
      worklist := rest;
      List.iter mark (field_pointers k addr);
      drain ()
  in
  drain ();
  (* sweep *)
  let to_free = ref [] in
  let freed_bytes = ref 0 in
  Kernel.iter_blocks k (fun ~addr ~size ~kind:_ ->
      if not (Hashtbl.mem marked addr) then begin
        to_free := addr :: !to_free;
        freed_bytes := !freed_bytes + size
      end);
  List.iter (Kernel.free_block k) !to_free;
  {
    gc_live = Hashtbl.length marked;
    gc_swept = List.length !to_free;
    gc_bytes_freed = !freed_bytes;
  }

(* Incremental tri-color collection ----------------------------------------

   Snapshot-at-beginning over an array-backed color map: [start] freezes
   the block population (sorted address array + color byte per block) and
   scans every root in the first increment; after that, [step ~budget]
   marks a bounded number of pointer slots per call, and finally sweeps
   the snapshot a bounded number of blocks per call.  Soundness between
   increments rests on three rules:

   - a combined write barrier on every 32-bit store greys both the
     overwritten word (Yuasa: a snapshot-reachable pointer cannot be
     hidden by overwriting its last memory copy) and the stored word
     (Dijkstra: a pointer conjured from outside the snapshot graph —
     a reused proxy, a migration landing — is caught the moment it is
     written);
   - blocks allocated after [start] are not in the snapshot, so the
     sweep can never free them (allocate-black);
   - addresses that reach registers without a store ([ensure_ref]
     results, spawn targets) are grafted grey through the kernel hook.

   During the sweep phase no new grey can be produced (everything
   reachable is black); a barrier or graft hit on a still-white block —
   an address conjured mid-sweep for a block the snapshot proved dead,
   e.g. [ensure_ref] reusing a dying proxy — resurrects it and its
   not-yet-swept white descendants instead of freeing them, deferring
   their fate to the next cycle. *)

type phase = Proots | Pmark | Psweep

let phase_name = function
  | Proots -> "gc_roots"
  | Pmark -> "gc_mark"
  | Psweep -> "gc_sweep"

type cycle = {
  snap : int array;  (* block addresses at cycle start, ascending *)
  snap_sizes : int array;
  index : (int, int) Hashtbl.t;  (* address -> snapshot position *)
  color : Bytes.t;  (* 0 white, 1 grey, 2 black *)
  mutable grey : (int * int) list;  (* (snapshot position, field cursor) *)
  mutable cphase : phase;
  mutable sweep_cursor : int;
  mutable live : int;
  mutable swept : int;
  mutable bytes_freed : int;
  cextra_roots : Oid.t list;
  cextra_addrs : int list;
}

type progress =
  | Step_more of { scanned : int; phase : phase }
  | Step_done of { scanned : int; stats : stats }

let white = 0
let grey_c = 1
let black = 2

(* resurrect a white block touched during the sweep: blacken it and its
   not-yet-swept white descendants (transitively) so no block the
   mutator can now reach is freed this cycle *)
let rec resurrect cy k i =
  if Bytes.get_uint8 cy.color i = white && i >= cy.sweep_cursor then begin
    Bytes.set_uint8 cy.color i black;
    cy.live <- cy.live + 1;
    List.iter
      (fun a ->
        match Hashtbl.find_opt cy.index a with
        | Some j -> resurrect cy k j
        | None -> ())
      (field_pointers k cy.snap.(i))
  end

let touch cy k addr =
  match Hashtbl.find_opt cy.index addr with
  | None -> ()  (* allocated after the snapshot: allocate-black *)
  | Some i -> (
    match cy.cphase with
    | Proots | Pmark ->
      if Bytes.get_uint8 cy.color i = white then begin
        Bytes.set_uint8 cy.color i grey_c;
        cy.live <- cy.live + 1;
        cy.grey <- (i, 0) :: cy.grey
      end
    | Psweep -> resurrect cy k i)

let detach cy k =
  ignore cy;
  Mem.clear_store_barrier (Kernel.mem k);
  Kernel.set_on_ref_graft k None

let start ?(extra_roots = []) ?(extra_addrs = []) k =
  let blocks = ref [] in
  Kernel.iter_blocks k (fun ~addr ~size ~kind:_ -> blocks := (addr, size) :: !blocks);
  let blocks = List.sort (fun (a, _) (b, _) -> compare a b) !blocks in
  let n = List.length blocks in
  let snap = Array.make n 0 and snap_sizes = Array.make n 0 in
  List.iteri
    (fun i (addr, size) ->
      snap.(i) <- addr;
      snap_sizes.(i) <- size)
    blocks;
  let index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i addr -> Hashtbl.replace index addr i) snap;
  let cy =
    {
      snap;
      snap_sizes;
      index;
      color = Bytes.make n (Char.chr white);
      grey = [];
      cphase = Proots;
      sweep_cursor = 0;
      live = 0;
      swept = 0;
      bytes_freed = 0;
      cextra_roots = extra_roots;
      cextra_addrs = extra_addrs;
    }
  in
  Mem.set_store_barrier (Kernel.mem k) (fun old_bits new_bits ->
      touch cy k old_bits;
      touch cy k new_bits);
  Kernel.set_on_ref_graft k (Some (fun addr -> touch cy k addr));
  cy

let abort cy k = detach cy k

(* migration send-off: the departing segment's roots may differ from
   their snapshot-time values (frames mutate through barriered stores,
   so this is belt-and-braces, but greying is always sound and it is
   deterministic), and after capture the segment is gone from the root
   set entirely.  Grey them before the capture runs. *)
let grey_segment cy k seg =
  match seg.T.seg_status with
  | T.Running -> ()
  | _ -> List.iter (fun a -> touch cy k a) (segment_roots k seg)

let grey_addr cy k addr = touch cy k addr

(* scan up to [fuel] pointer slots of snapshot block [i] starting at
   field [cursor]; returns (slots scanned, remaining cursor if the block
   is not finished) *)
let scan_block cy k i ~cursor ~fuel =
  let addr = cy.snap.(i) in
  let mem = Kernel.mem k in
  if Kernel.is_vector_block k addr then begin
    let kind = Mem.load32_bits mem (addr + L.vec_kind) in
    if kind = L.kind_string || kind = L.kind_ref || kind = L.kind_vec then begin
      let len = Mem.load32_bits mem (addr + L.vec_len) in
      let stop = min len (cursor + fuel) in
      for j = cursor to stop - 1 do
        let a = Mem.load32_bits mem (addr + L.vec_elems + (4 * j)) in
        if a <> 0 then touch cy k a
      done;
      (max 1 (stop - cursor), if stop >= len then None else Some stop)
    end
    else (1, None)
  end
  else if not (Kernel.is_resident k addr) then (1, None)
  else begin
    let class_index = Kernel.class_of_object k addr in
    let lc = Kernel.loaded_class k class_index in
    let fields = lc.Kernel.lc_class.Emc.Compile.cc_template.Emc.Template.ct_fields in
    let nf = Array.length fields in
    let stop = min nf (cursor + fuel) in
    for j = cursor to stop - 1 do
      let _, ty = fields.(j) in
      if Emc.Ir.is_pointer_type ty then begin
        let a = Mem.load32_bits mem (addr + L.field_offset j) in
        if a <> 0 then touch cy k a
      end
    done;
    (max 1 (stop - cursor), if stop >= nf then None else Some stop)
  end

(* the whole root set is scanned in one increment: root volume is
   proportional to suspended segments and pinned handles, not heap size,
   and an atomic root snapshot is what makes snapshot-at-beginning
   marking sound without a register barrier *)
let scan_roots cy k =
  let segs =
    List.sort
      (fun a b -> compare a.T.seg_id b.T.seg_id)
      (Kernel.segments k)
  in
  let roots =
    List.concat_map (fun seg -> segment_roots k seg) segs
    @ Kernel.string_literal_addrs k
    @ extra_root_addrs k ~extra_roots:cy.cextra_roots ~extra_addrs:cy.cextra_addrs
    @ harness_result_roots k []
  in
  List.iter (fun a -> touch cy k a) roots;
  List.length roots

let finish cy k ~scanned =
  detach cy k;
  Step_done
    {
      scanned;
      stats =
        { gc_live = cy.live; gc_swept = cy.swept; gc_bytes_freed = cy.bytes_freed };
    }

let step cy k ~budget =
  let budget = max 1 budget in
  let scanned = ref 0 in
  let result = ref None in
  while !result = None do
    if !scanned >= budget then result := Some (Step_more { scanned = !scanned; phase = cy.cphase })
    else
      match cy.cphase with
      | Proots ->
        scanned := !scanned + max 1 (scan_roots cy k);
        cy.cphase <- Pmark
      | Pmark -> (
        match cy.grey with
        | [] ->
          cy.cphase <- Psweep;
          cy.sweep_cursor <- 0
        | (i, cursor) :: rest ->
          cy.grey <- rest;
          let used, remaining = scan_block cy k i ~cursor ~fuel:(budget - !scanned) in
          (match remaining with
          | None -> Bytes.set_uint8 cy.color i black
          | Some c -> cy.grey <- (i, c) :: cy.grey);
          scanned := !scanned + used)
      | Psweep ->
        if cy.sweep_cursor >= Array.length cy.snap then
          result := Some (finish cy k ~scanned:!scanned)
        else begin
          let i = cy.sweep_cursor in
          cy.sweep_cursor <- i + 1;
          if Bytes.get_uint8 cy.color i = white then begin
            Kernel.free_block k cy.snap.(i);
            cy.swept <- cy.swept + 1;
            cy.bytes_freed <- cy.bytes_freed + cy.snap_sizes.(i)
          end;
          incr scanned
        end
  done;
  Option.get !result

let cycle_phase cy = cy.cphase
