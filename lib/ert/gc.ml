module Mem = Isa.Memory
module L = Emc.Layout
module T = Thread

type stats = {
  gc_live : int;
  gc_swept : int;
  gc_bytes_freed : int;
}

let rec value_root k v acc =
  match (v : Value.t) with
  | Value.Vref oid -> (
    match Kernel.find_object k oid with
    | Some addr -> addr :: acc
    | None -> (
      match Kernel.proxy_of k oid with
      | Some addr -> addr :: acc
      | None -> acc))
  | Value.Vvec (_, xs) -> Array.fold_left (fun acc x -> value_root k x acc) acc xs
  | Value.Vint _ | Value.Vreal _ | Value.Vbool _ | Value.Vstr _ | Value.Vnil -> acc

let suspension_roots k (s : T.suspension) acc =
  match s with
  | Isa.Suspend.Deliver v -> value_root k v acc
  | Isa.Suspend.Complete v ->
    Option.fold ~none:acc ~some:(fun v -> value_root k v acc) v
  | Isa.Suspend.Run | Isa.Suspend.Complete_dequeue _ | Isa.Suspend.Poll
  | Isa.Suspend.Syscall _ | Isa.Suspend.Bottom_return | Isa.Suspend.Halt
  | Isa.Suspend.Trap _ | Isa.Suspend.Fuel -> acc

let segment_roots k (seg : T.segment) =
  match seg.T.seg_spawn with
  | Some spawn ->
    let acc = value_root k (Value.Vref spawn.T.si_target) [] in
    List.fold_left (fun acc v -> value_root k v acc) acc spawn.T.si_args
  | None ->
    let frames = Frame_walk.walk k seg in
    let acc =
      List.concat_map
        (fun fr -> List.map fst (Frame_walk.live_pointer_slots k fr))
        frames
    in
    (match seg.T.seg_status with
    | T.Parked s -> suspension_roots k s acc
    | T.Running -> raise (Kernel.Runtime_error "gc: segment is running")
    | T.Blocked_monitor _ | T.Awaiting_reply _ | T.Dead -> acc)

let field_pointers k addr =
  if Kernel.is_vector_block k addr then Kernel.vector_pointer_elements k addr
  else if not (Kernel.is_resident k addr) then []
  else begin
    let class_index = Kernel.class_of_object k addr in
    let lc = Kernel.loaded_class k class_index in
    let fields = lc.Kernel.lc_class.Emc.Compile.cc_template.Emc.Template.ct_fields in
    let mem = Kernel.mem k in
    Array.to_list fields
    |> List.mapi (fun i (_, ty) -> (i, ty))
    |> List.filter_map (fun (i, ty) ->
           if Emc.Ir.is_pointer_type ty then
             let a = Int32.to_int (Mem.load32 mem (addr + L.field_offset i)) in
             if a = 0 then None else Some a
           else None)
  end

let collect ?(extra_roots = []) k =
  let marked = Hashtbl.create 64 in
  let known = Hashtbl.create 64 in
  Kernel.iter_blocks k (fun ~addr ~size:_ ~kind:_ -> Hashtbl.replace known addr ());
  let worklist = ref [] in
  let mark addr =
    if Hashtbl.mem known addr && not (Hashtbl.mem marked addr) then begin
      Hashtbl.replace marked addr ();
      worklist := addr :: !worklist
    end
  in
  (* roots: suspended thread state (via the bus-stop templates) and the
     code objects' string literals *)
  List.iter (fun seg -> List.iter mark (segment_roots k seg)) (Kernel.segments k);
  List.iter mark (Kernel.string_literal_addrs k);
  List.iter
    (fun oid ->
      match Kernel.find_object k oid with
      | Some addr -> mark addr
      | None -> (
        match Kernel.proxy_of k oid with
        | Some addr -> mark addr
        | None -> ()))
    extra_roots;
  (* trace *)
  let rec drain () =
    match !worklist with
    | [] -> ()
    | addr :: rest ->
      worklist := rest;
      List.iter mark (field_pointers k addr);
      drain ()
  in
  drain ();
  (* sweep *)
  let to_free = ref [] in
  let freed_bytes = ref 0 in
  Kernel.iter_blocks k (fun ~addr ~size ~kind:_ ->
      if not (Hashtbl.mem marked addr) then begin
        to_free := addr :: !to_free;
        freed_bytes := !freed_bytes + size
      end);
  List.iter (Kernel.free_block k) !to_free;
  {
    gc_live = Hashtbl.length marked;
    gc_swept = List.length !to_free;
    gc_bytes_freed = !freed_bytes;
  }
