(** Dense, array-backed OID maps (OID -> slot).

    Live keys occupy a contiguous slot range in parallel arrays, indexed
    by a monomorphic int table on {!Oid.intern} — no polymorphic
    compare, no [Int32] boxing on lookups, contiguous iteration.  Every
    operation is O(1); removal swaps the last slot down.  Iteration
    order is a deterministic function of the operation sequence, never
    of hashing. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills vacated slots so removed values don't leak. *)

val length : 'a t -> int
val mem : 'a t -> Oid.t -> bool
val find_opt : 'a t -> Oid.t -> 'a option
val replace : 'a t -> Oid.t -> 'a -> unit
val remove : 'a t -> Oid.t -> unit
val iter : (Oid.t -> 'a -> unit) -> 'a t -> unit
val fold : (Oid.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
