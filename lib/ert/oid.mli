(** Object identifiers.

    OIDs uniquely identify objects regardless of their location
    (section 3.2).  Two disjoint spaces share the 32-bit representation:

    - code-object OIDs, assigned deterministically by the program
      database (30-bit values, bit 30 clear);
    - data-object OIDs, allocated without cluster-wide coordination by
      tagging the creating node into the value (bit 30 set; 12-bit node
      field, 18-bit per-node serial). *)

type t = int32

val nil : t
val is_code : t -> bool
val is_data : t -> bool

val max_nodes : int
(** Capacity of the node field (4096). *)

val max_serial : int
(** Capacity of the per-node serial field (2^18 per node). *)

val fresh_data : node_id:int -> serial:int -> t
(** @raise Invalid_argument when node or serial exceed their fields. *)

val creator_node : t -> int option
(** Creating node of a data OID. *)

val serial : t -> int
(** Per-node serial of a data OID. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val intern : t -> int
(** Order-preserving non-negative plain-int image: [compare a b] and
    [Int.compare (intern a) (intern b)] always agree.  Hot-path tables
    and the location directory key on this to avoid polymorphic
    compares and [Int32] boxing. *)

module Tbl : Hashtbl.S with type key = t
(** Hashtable keyed by OID with monomorphic hash/equal. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
