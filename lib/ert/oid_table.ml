(* A dense, array-backed OID map: each live key owns a slot in a pair of
   parallel arrays, with a monomorphic int-keyed index (on [Oid.intern])
   resolving OID -> slot.  Compared to a polymorphic hashtable this keeps
   lookups free of Int32 boxing and polymorphic dispatch, and iteration
   walks a contiguous array — the representation the million-object
   cluster benchmark needs for its per-node object and proxy tables.

   Removal swaps the last slot down, so the arrays stay dense and every
   operation is O(1); iteration order is a deterministic function of the
   operation sequence (never of hashing), which keeps traces identical
   across runs and shard counts. *)

module ITbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type 'a t = {
  index : int ITbl.t;  (* interned oid -> slot *)
  mutable keys : Oid.t array;
  mutable vals : 'a array;
  mutable n : int;
  dummy : 'a;  (* fills vacated and never-used slots *)
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max 8 capacity in
  {
    index = ITbl.create capacity;
    keys = Array.make capacity Oid.nil;
    vals = Array.make capacity dummy;
    n = 0;
    dummy;
  }

let length t = t.n
let mem t oid = ITbl.mem t.index (Oid.intern oid)

let find_opt t oid =
  match ITbl.find_opt t.index (Oid.intern oid) with
  | Some slot -> Some t.vals.(slot)
  | None -> None

let grow t =
  let cap = Array.length t.keys * 2 in
  let keys = Array.make cap Oid.nil in
  let vals = Array.make cap t.dummy in
  Array.blit t.keys 0 keys 0 t.n;
  Array.blit t.vals 0 vals 0 t.n;
  t.keys <- keys;
  t.vals <- vals

let replace t oid v =
  let key = Oid.intern oid in
  match ITbl.find_opt t.index key with
  | Some slot -> t.vals.(slot) <- v
  | None ->
    if t.n = Array.length t.keys then grow t;
    t.keys.(t.n) <- oid;
    t.vals.(t.n) <- v;
    ITbl.replace t.index key t.n;
    t.n <- t.n + 1

let remove t oid =
  let key = Oid.intern oid in
  match ITbl.find_opt t.index key with
  | None -> ()
  | Some slot ->
    ITbl.remove t.index key;
    let last = t.n - 1 in
    if slot < last then begin
      let moved = t.keys.(last) in
      t.keys.(slot) <- moved;
      t.vals.(slot) <- t.vals.(last);
      ITbl.replace t.index (Oid.intern moved) slot
    end;
    t.keys.(last) <- Oid.nil;
    t.vals.(last) <- t.dummy;
    t.n <- last

let iter f t =
  for i = 0 to t.n - 1 do
    f t.keys.(i) t.vals.(i)
  done

let fold f t init =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f t.keys.(i) t.vals.(i) !acc
  done;
  !acc
