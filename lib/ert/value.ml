type t =
  | Vint of int32
  | Vreal of float
  | Vbool of bool
  | Vstr of string
  | Vref of Oid.t
  | Vvec of Emc.Ast.typ * t array
  | Vnil

let rec equal a b =
  match a, b with
  | Vint x, Vint y -> Int32.equal x y
  | Vreal x, Vreal y -> Float.equal x y
  | Vbool x, Vbool y -> Bool.equal x y
  | Vstr x, Vstr y -> String.equal x y
  | Vref x, Vref y -> Oid.equal x y
  | Vvec (tx, xs), Vvec (ty, ys) ->
    Emc.Ast.typ_equal tx ty
    && Array.length xs = Array.length ys
    && Array.for_all2 equal xs ys
  | Vnil, Vnil -> true
  | (Vint _ | Vreal _ | Vbool _ | Vstr _ | Vref _ | Vvec _ | Vnil), _ -> false

let rec pp ppf = function
  | Vint v -> Format.fprintf ppf "%ld" v
  | Vreal v -> Format.fprintf ppf "%g" v
  | Vbool v -> Format.fprintf ppf "%b" v
  | Vstr v -> Format.fprintf ppf "%S" v
  | Vref oid -> Oid.pp ppf oid
  | Vvec (_, xs) ->
    Format.fprintf ppf "vector[%a]"
      (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
      (Array.to_seq xs)
  | Vnil -> Format.pp_print_string ppf "nil"

let type_name = function
  | Vint _ -> "int"
  | Vreal _ -> "real"
  | Vbool _ -> "bool"
  | Vstr _ -> "string"
  | Vref _ -> "ref"
  | Vvec _ -> "vector"
  | Vnil -> "nil"

let tag_int = 1
let tag_real = 2
let tag_bool = 3
let tag_str = 4
let tag_ref = 5
let tag_nil = 6
let tag_vec = 7

let write_typ w (t : Emc.Ast.typ) =
  let rec go t =
    match t with
    | Emc.Ast.Tint -> Enet.Wire.Writer.u8 w 1
    | Emc.Ast.Treal -> Enet.Wire.Writer.u8 w 2
    | Emc.Ast.Tbool -> Enet.Wire.Writer.u8 w 3
    | Emc.Ast.Tstring -> Enet.Wire.Writer.u8 w 4
    | Emc.Ast.Tnil -> Enet.Wire.Writer.u8 w 5
    | Emc.Ast.Tobj name ->
      Enet.Wire.Writer.u8 w 6;
      Enet.Wire.Writer.str w name
    | Emc.Ast.Tvec e ->
      Enet.Wire.Writer.u8 w 7;
      go e
  in
  go t

let read_typ r : Emc.Ast.typ =
  let rec go () =
    match Enet.Wire.Reader.u8 r with
    | 1 -> Emc.Ast.Tint
    | 2 -> Emc.Ast.Treal
    | 3 -> Emc.Ast.Tbool
    | 4 -> Emc.Ast.Tstring
    | 5 -> Emc.Ast.Tnil
    | 6 -> Emc.Ast.Tobj (Enet.Wire.Reader.str r)
    | 7 -> Emc.Ast.Tvec (go ())
    | n -> failwith (Printf.sprintf "Value.read_typ: corrupt tag %d" n)
  in
  go ()

let rec write w v =
  match v with
  | Vint x ->
    Enet.Wire.Writer.u8 w tag_int;
    Enet.Wire.Writer.i32 w x
  | Vreal x ->
    Enet.Wire.Writer.u8 w tag_real;
    Enet.Wire.Writer.f64 w x
  | Vbool x ->
    Enet.Wire.Writer.u8 w tag_bool;
    Enet.Wire.Writer.bool w x
  | Vstr x ->
    Enet.Wire.Writer.u8 w tag_str;
    Enet.Wire.Writer.str w x
  | Vref oid ->
    Enet.Wire.Writer.u8 w tag_ref;
    Enet.Wire.Writer.u32 w oid
  | Vvec (ty, xs) ->
    Enet.Wire.Writer.u8 w tag_vec;
    write_typ w ty;
    Enet.Wire.Writer.u16 w (Array.length xs);
    Array.iter (write w) xs
  | Vnil -> Enet.Wire.Writer.u8 w tag_nil

(* Blit-tier codec: byte-identical to [write]/[read] above but through
   the uncharged raw wire primitives — the caller accounts a whole
   blitted frame or object with a single [Wire.Writer.add_charge].
   Keep the two codecs adjacent: any layout change must touch both. *)

let write_typ_raw w (t : Emc.Ast.typ) =
  let module W = Enet.Wire.Writer in
  let rec go t =
    match t with
    | Emc.Ast.Tint -> W.raw_u8 w 1
    | Emc.Ast.Treal -> W.raw_u8 w 2
    | Emc.Ast.Tbool -> W.raw_u8 w 3
    | Emc.Ast.Tstring -> W.raw_u8 w 4
    | Emc.Ast.Tnil -> W.raw_u8 w 5
    | Emc.Ast.Tobj name ->
      W.raw_u8 w 6;
      W.raw_str w name
    | Emc.Ast.Tvec e ->
      W.raw_u8 w 7;
      go e
  in
  go t

let read_typ_raw r : Emc.Ast.typ =
  let module R = Enet.Wire.Reader in
  let rec go () =
    match R.raw_u8 r with
    | 1 -> Emc.Ast.Tint
    | 2 -> Emc.Ast.Treal
    | 3 -> Emc.Ast.Tbool
    | 4 -> Emc.Ast.Tstring
    | 5 -> Emc.Ast.Tnil
    | 6 -> Emc.Ast.Tobj (R.raw_str r)
    | 7 -> Emc.Ast.Tvec (go ())
    | n -> failwith (Printf.sprintf "Value.read_typ_raw: corrupt tag %d" n)
  in
  go ()

let rec write_raw w v =
  let module W = Enet.Wire.Writer in
  match v with
  | Vint x ->
    W.raw_u8 w tag_int;
    W.raw_u32 w x
  | Vreal x ->
    W.raw_u8 w tag_real;
    W.raw_f64 w x
  | Vbool x ->
    W.raw_u8 w tag_bool;
    W.raw_u8 w (if x then 1 else 0)
  | Vstr x ->
    W.raw_u8 w tag_str;
    W.raw_str w x
  | Vref oid ->
    W.raw_u8 w tag_ref;
    W.raw_u32 w oid
  | Vvec (ty, xs) ->
    W.raw_u8 w tag_vec;
    write_typ_raw w ty;
    W.raw_u16 w (Array.length xs);
    Array.iter (write_raw w) xs
  | Vnil -> W.raw_u8 w tag_nil

let rec read_raw r =
  let module R = Enet.Wire.Reader in
  let tag = R.raw_u8 r in
  if tag = tag_int then Vint (R.raw_u32 r)
  else if tag = tag_real then Vreal (R.raw_f64 r)
  else if tag = tag_bool then Vbool (R.raw_u8 r <> 0)
  else if tag = tag_str then Vstr (R.raw_str r)
  else if tag = tag_ref then Vref (R.raw_u32 r)
  else if tag = tag_vec then begin
    let ty = read_typ_raw r in
    let n = R.raw_u16 r in
    Vvec (ty, Array.init n (fun _ -> read_raw r))
  end
  else if tag = tag_nil then Vnil
  else failwith (Printf.sprintf "Value.read_raw: corrupt tag %d" tag)

let rec read r =
  let tag = Enet.Wire.Reader.u8 r in
  if tag = tag_int then Vint (Enet.Wire.Reader.i32 r)
  else if tag = tag_real then Vreal (Enet.Wire.Reader.f64 r)
  else if tag = tag_bool then Vbool (Enet.Wire.Reader.bool r)
  else if tag = tag_str then Vstr (Enet.Wire.Reader.str r)
  else if tag = tag_ref then Vref (Enet.Wire.Reader.u32 r)
  else if tag = tag_vec then begin
    let ty = read_typ r in
    let n = Enet.Wire.Reader.u16 r in
    Vvec (ty, Array.init n (fun _ -> read r))
  end
  else if tag = tag_nil then Vnil
  else failwith (Printf.sprintf "Value.read: corrupt tag %d" tag)
