type t = int32

let nil = 0l
let data_bit = 0x4000_0000l
let is_data oid = Int32.logand oid data_bit <> 0l
let is_code oid = (not (is_data oid)) && not (Int32.equal oid nil)

(* data-OID layout: bit 30 the space tag, bits 18-29 the creating node
   (up to 4096 nodes), bits 0-17 the per-node serial.  Node-major, so
   Int32 order sorts by creator then age — the property the location
   directory's range splits and the dense tables rely on. *)
let max_nodes = 4096
let serial_bits = 18
let max_serial = 1 lsl serial_bits

let fresh_data ~node_id ~serial =
  if node_id < 0 || node_id >= max_nodes then
    invalid_arg "Oid.fresh_data: node id out of range";
  if serial < 0 || serial >= max_serial then
    invalid_arg "Oid.fresh_data: serial overflow";
  Int32.logor data_bit (Int32.of_int ((node_id lsl serial_bits) lor serial))

let creator_node oid =
  if is_data oid then
    Some (Int32.to_int (Int32.shift_right_logical oid serial_bits) land (max_nodes - 1))
  else None

let serial oid = Int32.to_int oid land (max_serial - 1)
let equal = Int32.equal
let compare = Int32.compare
let hash oid = Int32.to_int oid land max_int

(* bit 31 is never set (code OIDs are 30-bit, the data tag is bit 30),
   so the plain-int image is non-negative and preserves the Int32
   order; comparisons on it are immediate-int compares, free of both
   boxing and polymorphic dispatch *)
let intern = Int32.to_int

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let to_string oid =
  if Int32.equal oid nil then "nil"
  else if is_data oid then
    Printf.sprintf "obj:%d.%d"
      (Option.value (creator_node oid) ~default:0)
      (serial oid)
  else Printf.sprintf "code:%lx" oid

let pp ppf oid = Format.pp_print_string ppf (to_string oid)
