(** The per-node runtime kernel.

    One kernel per workstation: it owns the node's memory, text space,
    heap, object table and thread segments, executes native code on the
    virtual CPU, and services system calls.  The kernel is strictly
    node-local — anything involving another node (remote invocation,
    migration, remote returns) is surfaced as an {!outcall} for the
    cluster layer (which drives the network simulation and the mobility
    protocol) to handle.

    Control transfer discipline: the kernel regains control only at bus
    stops ([Syscall] instructions, loop-bottom polls, segment-bottom
    returns), so every suspended activation record it ever observes is at
    a bus stop — the prerequisite for both migration and garbage
    collection (sections 2.2.1, 3.2). *)

exception Runtime_error of string

type block_kind =
  | Bobject
  | Bproxy
  | Bstring
  | Bvector

type t

type loaded_class = {
  lc_class : Emc.Compile.compiled_class;
  lc_code : Isa.Code.t;
  lc_stops : Emc.Busstop.table;
  lc_image : Isa.Text.image;
  lc_desc_addr : int;  (** descriptor table in data memory *)
  lc_string_addrs : int array;  (** string-literal blocks *)
}

type outcall =
  | Oc_invoke of {
      seg : Thread.segment;
      target_oid : Oid.t;
      hint_node : int;
      callee_class : int;
      callee_method : int;
      args : Value.t list;
      stop_id : int;
    }  (** a trans-node invocation; the segment is awaiting the reply *)
  | Oc_move of {
      seg : Thread.segment;
      obj_addr : int;  (** local descriptor (resident object or proxy) *)
      dest_node : int;
    }
      (** a [move X to n] system call; the segment is parked at the stop
          and must be completed (wherever it ends up) by the mobility
          protocol *)
  | Oc_return of {
      link : Thread.link;
      value : Value.t;
      thread : Thread.tid;
    }  (** a segment-bottom return crossing to another node *)
  | Oc_start_process of {
      target_oid : Oid.t;
      hint_node : int;
    }  (** the object moved away during [initially]; start it over there *)
  | Oc_evict of {
      seg : Thread.segment;
      dest_node : int;
      armed_us : float;
    }
      (** a forced-eviction trap fired: the segment just became capturable
          (parked at a bus stop, blocked, or awaiting a reply) and must be
          shipped to [dest_node] by the mobility layer.  [armed_us] is the
          virtual time the trap was armed; the arm-to-fire window is the
          execution asynchronous migration overlaps the capture pipeline
          with *)

val create : ?clock:Sim.Clock.t -> node_id:int -> arch:Isa.Arch.t -> unit -> t
(** [clock] supplies the node's virtual clock (by default a fresh one);
    passing it in lets an embedding simulation share or observe it. *)

val serials : t -> int * int * int
(** Current (object, thread, segment) serial counters — the node's
    stable-storage incarnation state. *)

val inherit_serials : t -> int * int * int -> unit
(** Raise this kernel's serial counters to at least the given floor.  A
    rebooted node must never re-mint an OID or TID its previous
    incarnation already issued (copies may survive elsewhere in the
    cluster), so a restart carries the crashed kernel's counters into
    its replacement. *)

val node_id : t -> int
val arch : t -> Isa.Arch.t
val mem : t -> Isa.Memory.t
val text : t -> Isa.Text.t
val heap : t -> Heap.t

(* virtual time and cost accounting *)
val clock : t -> Sim.Clock.t
(** The node's virtual clock; all time accounting below goes through it. *)

val time_us : t -> float
val set_time_us : t -> float -> unit
val charge_insns : t -> int -> unit
(** Charge kernel software work, costed at the node's MIPS rating. *)

val charge_us : t -> float -> unit
(** Charge fixed (CPU-independent) virtual time. *)

val credit_us : t -> float -> unit
(** Roll virtual time back by the given amount (clamped at zero).  Used by
    asynchronous migration to refund capture work that was overlapped with
    continued execution. *)

val insns_executed : t -> int
val cycles_executed : t -> int
val syscalls_handled : t -> int

(* console *)
val output : t -> string
val clear_output : t -> unit
val set_echo : t -> bool -> unit
(** Also print to the real stdout (for the example programs). *)

(* program and code management *)
val load_program : t -> Emc.Compile.program -> unit
val program : t -> Emc.Compile.program
val loaded_class : t -> int -> loaded_class
(** Loads (code object fetch, descriptor table and string-literal
    construction) on first use. *)

val class_loaded : t -> int -> bool

(* objects *)
val create_object : t -> class_index:int -> int
val find_object : t -> Oid.t -> int option
(** Resident objects only. *)

val proxy_of : t -> Oid.t -> int option
val ensure_ref : t -> Oid.t -> int
(** Local address for an OID: the resident descriptor, an existing proxy,
    or a fresh proxy whose forwarding hint is the OID's creator node. *)

val set_proxy_hint : t -> addr:int -> node:int -> unit
val oid_at : t -> int -> Oid.t
val is_resident : t -> int -> bool
val proxy_hint : t -> int -> int
val class_of_object : t -> int -> int
val install_object : t -> oid:Oid.t -> class_index:int -> int
(** Allocate a resident descriptor for an arriving object (fields are
    filled by the unmarshaller); replaces any proxy for the OID. *)

val evict_object : t -> addr:int -> forward_to:int -> unit
(** Turn a resident descriptor into a forwarding proxy (after move-out). *)

val objects : t -> (Oid.t * int) list

val resident_count : t -> int
(** Number of resident objects (dense object-table length). *)

val proxy_count : t -> int
(** Number of forwarding proxies on this node. *)

val iter_objects : t -> (Oid.t -> int -> unit) -> unit
(** Iterate the resident objects without building the assoc list; dense
    slot order (deterministic in the operation sequence). *)

val iter_proxies : t -> (Oid.t -> int -> unit) -> unit
(** Iterate the forwarding proxies (OID, descriptor address) — the
    location directory's crash-rebuild walks these. *)

val iter_blocks : t -> (addr:int -> size:int -> kind:block_kind -> unit) -> unit

val free_block : t -> int -> unit
(** Return a swept block to the allocator and drop its table entries. *)

val string_literal_addrs : t -> int list
(** String blocks owned by loaded code objects (GC roots). *)

val make_string : t -> string -> int
val read_string_block : t -> int -> string
val make_vector : t -> kind:int -> len:int -> int
val is_vector_block : t -> int -> bool

val vector_pointer_elements : t -> int -> int list
(** Element addresses of a pointer-kind vector (GC tracing). *)

val attached_refs : t -> addr:int -> int list
(** Addresses held in attached fields of a resident object. *)

(* value conversion *)
val value_of_raw : t -> Emc.Ast.typ -> int32 -> Value.t
val raw_of_value : t -> Value.t -> int32

(* bus stops *)
val stop_at_pc : t -> int -> (loaded_class * Emc.Busstop.entry) option
(** Resolve an absolute PC to the loaded class and bus stop it parks at.
    A PC inside a bridge fragment resolves to the real class and the
    elided stop the fragment bridges — capture inside a bridge looks
    identical to capture at the stop itself. *)

val stop_by_id : t -> class_index:int -> stop_id:int -> Emc.Busstop.entry
val frame_info : t -> class_index:int -> method_index:int -> Emc.Busstop.frame_info
val abs_pc : t -> class_index:int -> int -> int
val image_of_class : t -> int -> Isa.Text.image

val resume_abs : t -> class_index:int -> Emc.Busstop.entry -> int
(** Absolute resume PC for a thread parked at the stop: the stop's PC in
    this node's class image, or — when this node's instance elided the
    stop — the base of a (cached) compiled bridge fragment
    ([Poll stop; Jmp_abs resume], section 2.4) that re-enters the image
    without executing any source-level action. *)

val ensure_bridge : t -> class_index:int -> Emc.Busstop.entry -> Bridge.frag
(** The bridge fragment for an elided stop, generating and loading it on
    first use. *)

val bridge : t -> Bridge.t
(** This node's bridge-fragment cache (statistics). *)

val set_bridge_cache : t -> Bridge.t -> unit
(** Point the kernel at a shared bridge-fragment cache (the code
    repository keeps one per node so hit/miss counters survive a node
    restart; the restart path clears the fragments themselves, which
    address the dead kernel's text). *)

(* threads and segments *)
val segments : t -> Thread.segment list
val find_segment : t -> int -> Thread.segment option
val fresh_tid : t -> Thread.tid
val fresh_seg_id : t -> int
val stack_bytes : int
val alloc_stack : t -> int
(** Allocate a stack region; returns its top (highest) address. *)

val register_segment : t -> Thread.segment -> unit
val unregister_segment : t -> Thread.segment -> unit

val set_seg_forward : t -> seg_id:int -> node:int -> unit
(** Leave a forwarding address for a migrated segment, so late replies can
    chase it. *)

val seg_forward : t -> seg_id:int -> int option
val enqueue_ready : t -> Thread.segment -> unit

val spawn_root :
  t -> target_addr:int -> method_name:string -> args:Value.t list -> Thread.tid

val spawn_exact :
  t ->
  spawn:Thread.spawn_info ->
  link:Thread.link option ->
  thread:Thread.tid ->
  seg_id:int ->
  status:Thread.status ->
  Thread.segment
(** Install a segment with an explicit id and status (used when rebuilding
    a migrated, never-executed segment). *)

val spawn_rpc :
  t ->
  target_addr:int ->
  callee_class:int ->
  callee_method:int ->
  args:Value.t list ->
  link:Thread.link ->
  thread:Thread.tid ->
  Thread.segment

val start_process_if_any : t -> target_addr:int -> Thread.tid option
(** Start the object's Emerald process section (if its class declares
    one) as an independent thread; returns its id. *)

val deliver_result : t -> Thread.segment -> Value.t -> unit
val root_result : t -> Thread.tid -> Value.t option option
(** [Some r] once the root thread has finished ([r = None] for a
    resultless operation). *)

val iter_root_results : t -> (Thread.tid -> Value.t option -> unit) -> unit
(** Iterate delivered-but-unread root results — the collector treats
    their values as roots until the harness reads them. *)

(* monitors *)
val monitor_locked : t -> obj_addr:int -> bool
val set_monitor_locked : t -> obj_addr:int -> bool -> unit
val monitor_waiters : t -> obj_addr:int -> Thread.segment list

val condition_waiters : t -> obj_addr:int -> cond:int -> Thread.segment list
(** Segments waiting on one of the object's monitor conditions, in queue
    order. *)

val monitor_enqueue_blocked :
  t -> obj_addr:int -> ?cond:int -> ?deadline:float -> Thread.segment -> unit
(** Re-enqueue a migrated-in segment that was blocked on this monitor
    ([cond] selects a condition queue; default: the entry queue;
    [deadline] restores a timed wait's expiry). *)

(* timed waits *)
val next_timeout : t -> float option
(** Earliest wait-timeout deadline among this node's blocked segments, if
    any — the virtual time at which {!expire_timeouts} next has work. *)

val expire_timeouts : t -> now:float -> int
(** Expire every timed wait whose deadline is [<= now], in deterministic
    (deadline, segment id) order.  An expired waiter leaves its condition
    queue; if the monitor is free it takes the lock and becomes ready at
    once, otherwise it lines up on the entry queue like a signalled
    waiter.  Returns the number of waits expired. *)

val set_on_code_load : t -> (class_index:int -> unit) -> unit
(** Called on each first-time code-object load (for repository fetch
    accounting). *)

val set_on_root_result : t -> (thread:Thread.tid -> Value.t option -> unit) -> unit
(** Called when a root thread (no reply link) finishes on this node, so
    the embedding cluster can track completions without scanning every
    node. *)

val set_on_ref_graft : t -> (int -> unit) option -> unit
(** Install (or, with [None], remove) the incremental collector's graft
    hook: it receives every block address that reaches machine registers
    or a fresh call frame outside the memory store path — [ensure_ref]
    results (resident objects and reused proxies) and spawn targets — so
    a mark cycle in progress can grey addresses the write barrier cannot
    see.  Installed only while a cycle is active. *)

val set_quantum : t -> int option -> unit
(** [Some q] switches to preemptive (Trellis/Owl-style) scheduling: a
    slice is bounded by [q] instructions and a thread may be left between
    bus stops; use {!advance_to_stop} before capturing its state.
    [None] (the default) is the Emerald discipline: control transfers only
    at bus stops. *)

val quantum : t -> int option

val set_dispatch_cache : t -> Isa.Dispatch.cache -> unit
(** Point the kernel at a shared translated-code cache (the code
    repository keeps one per node, so translations survive the kernel
    they were made for — stale tables are voided by the engine's memory
    identity check). *)

val dispatch_stats : t -> Isa.Dispatch.stats
(** Translation and slice counters of this kernel's dispatch cache. *)

val set_threaded : t -> bool -> unit
(** [false] forces the baseline fetch/decode interpreter
    ({!Isa.Machine.run}); [true] (the default) executes through the
    threaded-dispatch engine ({!Isa.Dispatch.run}).  The two are
    observationally identical; the switch exists for differential tests
    and the interpreter benchmark. *)

val threaded : t -> bool

val set_opt_level : t -> Emc.Opt.level -> unit
(** Select which code instance this node runs: the program's
    [(arch, level)] instance when compiled, else the program's primary
    instance.  Must be set before any code is loaded.
    @raise Failure after a class has been loaded at a different level. *)

val opt_level : t -> Emc.Opt.level

val at_stop : t -> Thread.segment -> bool
(** Is this segment's state well defined (at a bus stop / fully
    machine-describable)?  Always true under the default discipline. *)

(* forced eviction *)
val capturable : t -> Thread.segment -> bool
(** May this segment be captured for migration right now?  True when it is
    live and suspended at a well-defined point (parked at a stop, blocked
    on a monitor queue, or awaiting a remote reply). *)

val evict_thread : t -> seg_id:int -> dest_node:int -> outcall list
(** Arm a forced-eviction trap on the segment.  If the segment is already
    capturable the trap fires immediately and the returned list carries the
    [Oc_evict]; otherwise the segment runs with polling pinned on and the
    trap fires at its very next bus stop — no cooperative poll request is
    involved.  Unknown or dead segments are ignored. *)

val evictions : t -> int
(** Eviction traps fired on this node so far. *)

val evictions_armed : t -> int
(** Eviction traps currently armed and waiting for a bus stop. *)

val ready_depth : t -> int
(** Current scheduler run-queue depth. *)

val peak_ready_depth : t -> int
(** High-water mark of the run-queue depth. *)

val advance_to_stop : t -> Thread.segment -> outcall list
(** Execute a preempted segment natively forward to its next bus stop
    (section 2.2.1's Trellis/Owl technique).  System calls are not
    dispatched — the segment parks at the stop.  Returns any cross-node
    actions produced by a segment-bottom return along the way. *)

(* execution *)
val step : t -> outcall list
(** Run one scheduling slice: dispatch the next ready segment and execute
    it to its next control transfer.  Returns the cross-node actions it
    produced (empty when idle or when the work stayed local). *)

val has_ready : t -> bool
val live_segment_count : t -> int
