module A = Isa.Arch
module M = Isa.Machine
module S = Isa.Suspend
module Mem = Isa.Memory
module L = Emc.Layout

exception Runtime_error of string

type block_kind =
  | Bobject
  | Bproxy
  | Bstring
  | Bvector

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

type loaded_class = {
  lc_class : Emc.Compile.compiled_class;
  lc_code : Isa.Code.t;
  lc_stops : Emc.Busstop.table;
  lc_image : Isa.Text.image;
  lc_desc_addr : int;
  lc_string_addrs : int array;
}

type outcall =
  | Oc_invoke of {
      seg : Thread.segment;
      target_oid : Oid.t;
      hint_node : int;
      callee_class : int;
      callee_method : int;
      args : Value.t list;
      stop_id : int;
    }
  | Oc_move of {
      seg : Thread.segment;
      obj_addr : int;
      dest_node : int;
    }
  | Oc_return of {
      link : Thread.link;
      value : Value.t;
      thread : Thread.tid;
    }
  | Oc_start_process of {
      target_oid : Oid.t;
      hint_node : int;
    }  (** the object moved away during [initially]; start it over there *)
  | Oc_evict of {
      seg : Thread.segment;
      dest_node : int;
      armed_us : float;
    }
      (** a forced-eviction trap fired: the segment just parked at a bus
          stop and must be shipped to [dest_node] by the mobility layer.
          [armed_us] is the virtual time the trap was armed — the window
          from arming to firing is execution the asynchronous-migration
          pipeline may overlap with *)

type t = {
  knode_id : int;
  karch : A.t;
  k_us_per_cycle : float;  (* cycle_time_ns / 1000, hoisted out of charge_cycles *)
  kmem : Mem.t;
  ktext : Isa.Text.t;
  kheap : Heap.t;
  mutable kprogram : Emc.Compile.program option;
  loaded : (int, loaded_class) Hashtbl.t;  (* class index -> loaded *)
  objects : int Oid_table.t;  (* resident: OID -> descriptor address *)
  proxies : int Oid_table.t;
  segs : (int, Thread.segment) Hashtbl.t;
  seg_forwards : (int, int) Hashtbl.t;  (* migrated segment -> node *)
  run_queue : Thread.segment Queue.t;
  root_results : (Thread.tid, Value.t option) Hashtbl.t;
  blocks : (int, int * block_kind) Hashtbl.t;  (* heap blocks the GC may sweep *)
  out : Buffer.t;
  mutable echo : bool;
  kclock : Sim.Clock.t;  (* node-local virtual time *)
  mutable oid_serial : int;
  mutable tid_serial : int;
  mutable seg_serial : int;
  mutable insns : int;
  mutable cycles : int;
  mutable syscalls : int;
  mutable on_code_load : (class_index:int -> unit) option;
  mutable on_root_result : (thread:Thread.tid -> Value.t option -> unit) option;
  mutable on_ref_graft : (int -> unit) option;
      (* incremental-GC graft hook: called with every block address that
         reaches machine registers or fresh frames outside the 32-bit
         store path ([ensure_ref] results, spawn targets) so a mark
         cycle in progress can grey it.  [None] when no cycle is
         active. *)
  mutable quantum : int option;
      (* preemptive (Trellis/Owl-style) scheduling: slices are bounded by
         an instruction quantum and threads may be left between bus stops *)
  evict_arms : (int, int * float) Hashtbl.t;
      (* armed eviction traps: segment id -> (destination node, virtual
         time the trap was armed).  An armed
         segment runs with poll_requested pinned true, so it is captured
         at its next bus stop with no cooperative polling by the code. *)
  mutable evictions : int;  (* eviction traps fired *)
  mutable peak_ready : int;  (* high-water mark of the run queue *)
  mutable kdispatch : Isa.Dispatch.cache;
      (* per-node translated-code cache for the threaded-dispatch engine;
         the cluster points it at the code repository's per-node cache *)
  mutable kthreaded : bool;
      (* execute through Isa.Dispatch (default) or the baseline
         fetch/decode Machine.run (for differential tests and bench) *)
  mutable kopt : Emc.Opt.level;
      (* preferred code instance: the kernel loads the program's
         (arch, kopt) instance when it was compiled, falling back to the
         program's primary level *)
  mutable kbridge : Bridge.t;
      (* compiled bridge fragments for landing threads parked at bus
         stops this node's instance elided; the cluster points it at the
         code repository's per-node cache so the counters survive a node
         restart (the fragments themselves are voided — they address
         kernel text) *)
}

let create ?clock ~node_id ~arch () =
  let mem = Mem.create ~endian:arch.A.endian ~size:(1 lsl 16) in
  let kclock =
    match clock with
    | Some c -> c
    | None -> Sim.Clock.create ()
  in
  {
    knode_id = node_id;
    karch = arch;
    k_us_per_cycle = A.cycle_time_ns arch /. 1000.0;
    kmem = mem;
    ktext = Isa.Text.create ();
    kheap = Heap.create ~mem ~start:0x1000;
    kprogram = None;
    loaded = Hashtbl.create 8;
    objects = Oid_table.create ~dummy:0 ();
    proxies = Oid_table.create ~dummy:0 ();
    segs = Hashtbl.create 16;
    seg_forwards = Hashtbl.create 16;
    run_queue = Queue.create ();
    root_results = Hashtbl.create 8;
    blocks = Hashtbl.create 64;
    out = Buffer.create 256;
    echo = false;
    kclock;
    oid_serial = 0;
    tid_serial = 0;
    seg_serial = 0;
    insns = 0;
    cycles = 0;
    syscalls = 0;
    on_code_load = None;
    on_root_result = None;
    on_ref_graft = None;
    quantum = None;
    evict_arms = Hashtbl.create 4;
    evictions = 0;
    peak_ready = 0;
    kdispatch = Isa.Dispatch.create_cache ();
    kthreaded = true;
    kopt = Emc.Opt.O0;
    kbridge = Bridge.create ();
  }

let node_id t = t.knode_id
let arch t = t.karch
let mem t = t.kmem
let text t = t.ktext
let heap t = t.kheap
let clock t = t.kclock
let time_us t = t.kclock.Sim.Clock.now
let set_time_us t v = Sim.Clock.advance_to t.kclock v
let charge_insns t n = Sim.Clock.add t.kclock (float_of_int n /. t.karch.A.mips)
let charge_us t us = Sim.Clock.add t.kclock us

(* roll virtual time back by [us]: async migration credits the portion of
   capture/translate/marshal that was overlapped with execution (the work
   was charged synchronously when the spans ran; the credit removes the
   double count, never past zero) *)
let credit_us t us =
  let clk = t.kclock in
  clk.Sim.Clock.now <- Float.max 0.0 (clk.Sim.Clock.now -. us)

let charge_cycles t c =
  t.cycles <- t.cycles + c;
  let clk = t.kclock in
  clk.Sim.Clock.now <- clk.Sim.Clock.now +. (float_of_int c *. t.k_us_per_cycle)

let insns_executed t = t.insns
let cycles_executed t = t.cycles
let syscalls_handled t = t.syscalls
let output t = Buffer.contents t.out
let clear_output t = Buffer.clear t.out
let set_echo t v = t.echo <- v

let print_string_out t s =
  Buffer.add_string t.out s;
  if t.echo then print_string s

(* Program and code management ------------------------------------------- *)

let load_program t prog =
  (match t.kprogram with
  | Some p when p != prog -> error "node %d: a program is already loaded" t.knode_id
  | Some _ | None -> ());
  t.kprogram <- Some prog

let program t =
  match t.kprogram with
  | Some p -> p
  | None -> error "node %d: no program loaded" t.knode_id

let make_string t s =
  let size = L.str_bytes + String.length s in
  let addr = Heap.alloc t.kheap size in
  Hashtbl.replace t.blocks addr (size, Bstring);
  Mem.store32 t.kmem (addr + L.str_flags) (Int32.of_int L.flag_string);
  Mem.store32 t.kmem (addr + L.str_len) (Int32.of_int (String.length s));
  Mem.blit_string t.kmem (addr + L.str_bytes) s;
  addr

let read_string_block t addr =
  let len = Int32.to_int (Mem.load32 t.kmem (addr + L.str_len)) in
  Mem.read_string t.kmem (addr + L.str_bytes) len

let make_vector t ~kind ~len =
  let size = L.vec_elems + (4 * len) in
  let addr = Heap.alloc t.kheap size in
  Hashtbl.replace t.blocks addr (size, Bvector);
  Mem.store32 t.kmem (addr + L.vec_flags) (Int32.of_int L.flag_vector);
  Mem.store32 t.kmem (addr + L.vec_len) (Int32.of_int len);
  Mem.store32 t.kmem (addr + L.vec_kind) (Int32.of_int kind);
  addr

let is_vector_block t addr =
  Int32.logand (Mem.load32 t.kmem (addr + L.vec_flags)) (Int32.of_int L.flag_vector)
  <> 0l

(* element addresses the garbage collector must trace.  Unsigned
   ([load32_bits]) reads throughout: a signed [Int32.to_int] would fold
   a high-bit element address into a negative int the collector could
   never match against a block. *)
let vector_pointer_elements t addr =
  let kind = Mem.load32_bits t.kmem (addr + L.vec_kind) in
  if kind = L.kind_string || kind = L.kind_ref || kind = L.kind_vec then begin
    let len = Mem.load32_bits t.kmem (addr + L.vec_len) in
    List.filter_map
      (fun i ->
        let a = Mem.load32_bits t.kmem (addr + L.vec_elems + (4 * i)) in
        if a = 0 then None else Some a)
      (List.init len Fun.id)
  end
  else []

(* the representative element type of a kind code, for machine-independent
   fresh-vector completion values; [kind_of_typ] is its left inverse *)
let typ_of_kind kind =
  if kind = L.kind_int then Emc.Ast.Tint
  else if kind = L.kind_real then Emc.Ast.Treal
  else if kind = L.kind_bool then Emc.Ast.Tbool
  else if kind = L.kind_string then Emc.Ast.Tstring
  else if kind = L.kind_vec then Emc.Ast.Tvec Emc.Ast.Tnil
  else Emc.Ast.Tnil

let default_value_of_typ = function
  | Emc.Ast.Tint -> Value.Vint 0l
  | Emc.Ast.Treal -> Value.Vreal 0.0
  | Emc.Ast.Tbool -> Value.Vbool false
  | Emc.Ast.Tstring | Emc.Ast.Tobj _ | Emc.Ast.Tvec _ | Emc.Ast.Tnil -> Value.Vnil

(* Code loading: allocate the descriptor table (class index, absolute
   method entries, string-literal addresses) in data memory so generated
   code can dispatch and fetch literals with plain loads. *)
let loaded_class t class_index =
  match Hashtbl.find_opt t.loaded class_index with
  | Some lc -> lc
  | None ->
    let prog = program t in
    let cc = Emc.Compile.class_by_index prog class_index in
    let art =
      (* exact (arch, level) instance when the program carries it;
         otherwise the program's primary instance (single-level programs
         behave exactly as before the instance refactor) *)
      match Emc.Compile.artifact_at cc ~arch_id:t.karch.A.id ~level:t.kopt with
      | Some art -> art
      | None -> Emc.Compile.artifact cc ~arch_id:t.karch.A.id
    in
    let code = art.Emc.Compile.aa_code in
    let image = Isa.Text.load t.ktext code in
    let nmethods = Array.length code.Isa.Code.methods in
    let strings = cc.Emc.Compile.cc_template.Emc.Template.ct_strings in
    let nstrings = Array.length strings in
    let desc = Heap.alloc t.kheap (L.desc_size ~nmethods ~nstrings) in
    Mem.store32 t.kmem (desc + L.desc_class) (Int32.of_int class_index);
    Array.iter
      (fun (m : Isa.Code.method_info) ->
        Mem.store32 t.kmem
          (desc + L.desc_method m.Isa.Code.method_index)
          (Int32.of_int (image.Isa.Text.base + m.Isa.Code.entry_offset)))
      code.Isa.Code.methods;
    let string_addrs =
      Array.mapi
        (fun i s ->
          let addr = make_string t s in
          Mem.store32 t.kmem (desc + L.desc_string ~nmethods i) (Int32.of_int addr);
          addr)
        strings
    in
    let lc =
      {
        lc_class = cc;
        lc_code = code;
        lc_stops = art.Emc.Compile.aa_stops;
        lc_image = image;
        lc_desc_addr = desc;
        lc_string_addrs = string_addrs;
      }
    in
    Hashtbl.replace t.loaded class_index lc;
    (match t.on_code_load with
    | Some f -> f ~class_index
    | None -> ());
    lc

let class_loaded t class_index = Hashtbl.mem t.loaded class_index
let set_on_code_load t f = t.on_code_load <- Some f
let set_on_root_result t f = t.on_root_result <- Some f
let set_quantum t q = t.quantum <- q
let quantum t = t.quantum
let set_dispatch_cache t c = t.kdispatch <- c
let dispatch_stats t = Isa.Dispatch.stats t.kdispatch
let set_threaded t b = t.kthreaded <- b
let threaded t = t.kthreaded

let set_opt_level t l =
  if Hashtbl.length t.loaded > 0 && not (Emc.Opt.equal l t.kopt) then
    error "node %d: cannot change optimization level after code is loaded" t.knode_id;
  t.kopt <- l

let opt_level t = t.kopt
let bridge t = t.kbridge
let set_bridge_cache t c = t.kbridge <- c

(* Objects ----------------------------------------------------------------- *)

let oid_at t addr = Mem.load32 t.kmem (addr + L.obj_oid)

let is_resident t addr =
  Int32.logand (Mem.load32 t.kmem (addr + L.obj_flags)) (Int32.of_int L.flag_resident)
  <> 0l

let proxy_hint t addr =
  if is_resident t addr then t.knode_id
  else Int32.to_int (Mem.load32 t.kmem (addr + L.obj_desc))

let alloc_descriptor t ~oid ~nconds ~nfields =
  let size = L.object_size ~nconds ~nfields in
  let addr = Heap.alloc t.kheap size in
  Hashtbl.replace t.blocks addr (size, Bobject);
  Mem.store32 t.kmem (addr + L.obj_oid) oid;
  (* empty circular monitor entry queue and condition queues *)
  let init_sentinel sent =
    Mem.store32 t.kmem sent (Int32.of_int sent);
    Mem.store32 t.kmem (sent + 4) (Int32.of_int sent)
  in
  init_sentinel (addr + L.obj_qflink);
  for c = 0 to nconds - 1 do
    init_sentinel (addr + L.cond_sentinel ~nfields c)
  done;
  addr

let install_object t ~oid ~class_index =
  let lc = loaded_class t class_index in
  let tmpl = lc.lc_class.Emc.Compile.cc_template in
  let nfields = Array.length tmpl.Emc.Template.ct_fields in
  let nconds = Array.length tmpl.Emc.Template.ct_conditions in
  let addr =
    (* proxies are header-sized; allocate a full descriptor and leave any
       existing proxy forwarding to ourselves: local lookups go through
       the object table, and the stale proxy is collected by the GC *)
    alloc_descriptor t ~oid ~nconds ~nfields
  in
  Mem.store32 t.kmem (addr + L.obj_flags)
    (Int32.of_int (L.flag_resident lor L.flag_code_loaded));
  Mem.store32 t.kmem (addr + L.obj_desc) (Int32.of_int (loaded_class t class_index).lc_desc_addr);
  Oid_table.replace t.objects oid addr;
  Oid_table.remove t.proxies oid;
  addr

let serials t = (t.oid_serial, t.tid_serial, t.seg_serial)

let inherit_serials t (oid_s, tid_s, seg_s) =
  t.oid_serial <- max t.oid_serial oid_s;
  t.tid_serial <- max t.tid_serial tid_s;
  t.seg_serial <- max t.seg_serial seg_s

let create_object t ~class_index =
  t.oid_serial <- t.oid_serial + 1;
  let oid = Oid.fresh_data ~node_id:t.knode_id ~serial:t.oid_serial in
  let lc = loaded_class t class_index in
  let tmpl = lc.lc_class.Emc.Compile.cc_template in
  let addr = install_object t ~oid ~class_index in
  (* literal field initialisers *)
  Array.iteri
    (fun i init ->
      let raw =
        match (init : Emc.Ir.field_init) with
        | Emc.Ir.Fint v -> v
        | Emc.Ir.Fbool b -> if b then 1l else 0l
        | Emc.Ir.Freal x -> Isa.Float_format.encode t.karch.A.float_format x
        | Emc.Ir.Fstr s -> Int32.of_int (make_string t s)
        | Emc.Ir.Fnil -> 0l
      in
      Mem.store32 t.kmem (addr + L.field_offset i) raw)
    tmpl.Emc.Template.ct_field_inits;
  addr

let find_object t oid = Oid_table.find_opt t.objects oid
let proxy_of t oid = Oid_table.find_opt t.proxies oid

let make_proxy t oid ~hint =
  let addr = Heap.alloc t.kheap L.obj_header_size in
  Hashtbl.replace t.blocks addr (L.obj_header_size, Bproxy);
  Mem.store32 t.kmem (addr + L.obj_oid) oid;
  Mem.store32 t.kmem (addr + L.obj_flags) 0l;
  Mem.store32 t.kmem (addr + L.obj_desc) (Int32.of_int hint);
  Oid_table.replace t.proxies oid addr;
  addr

let set_on_ref_graft t f = t.on_ref_graft <- f

let graft_addr t addr =
  match t.on_ref_graft with
  | None -> ()
  | Some f -> f addr

let ensure_ref t oid =
  let addr =
    match Oid_table.find_opt t.objects oid with
    | Some addr -> addr
    | None -> (
      match Oid_table.find_opt t.proxies oid with
      | Some addr -> addr
      | None ->
        let hint = Option.value (Oid.creator_node oid) ~default:0 in
        make_proxy t oid ~hint)
  in
  graft_addr t addr;
  addr

let set_proxy_hint t ~addr ~node =
  if is_resident t addr then ()
  else Mem.store32 t.kmem (addr + L.obj_desc) (Int32.of_int node)

let class_of_object t addr =
  if not (is_resident t addr) then error "class_of_object: %s is not resident" (Oid.to_string (oid_at t addr));
  let desc = Int32.to_int (Mem.load32 t.kmem (addr + L.obj_desc)) in
  Int32.to_int (Mem.load32 t.kmem (desc + L.desc_class))

let evict_object t ~addr ~forward_to =
  let oid = oid_at t addr in
  Mem.store32 t.kmem (addr + L.obj_flags) 0l;
  Mem.store32 t.kmem (addr + L.obj_desc) (Int32.of_int forward_to);
  Oid_table.remove t.objects oid;
  Oid_table.replace t.proxies oid addr

let objects t = Oid_table.fold (fun oid addr acc -> (oid, addr) :: acc) t.objects []
let resident_count t = Oid_table.length t.objects
let proxy_count t = Oid_table.length t.proxies
let iter_objects t f = Oid_table.iter f t.objects
let iter_proxies t f = Oid_table.iter f t.proxies

let iter_blocks t f = Hashtbl.iter (fun addr (size, kind) -> f ~addr ~size ~kind) t.blocks

let free_block t addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> ()
  | Some (size, kind) ->
    Hashtbl.remove t.blocks addr;
    (match kind with
    | Bobject | Bproxy ->
      let oid = oid_at t addr in
      (match Oid_table.find_opt t.objects oid with
      | Some a when a = addr -> Oid_table.remove t.objects oid
      | Some _ | None -> ());
      (match Oid_table.find_opt t.proxies oid with
      | Some a when a = addr -> Oid_table.remove t.proxies oid
      | Some _ | None -> ())
    | Bstring | Bvector -> ());
    Heap.free t.kheap ~addr ~size

let string_literal_addrs t =
  Hashtbl.fold (fun _ lc acc -> Array.to_list lc.lc_string_addrs @ acc) t.loaded []

let attached_refs t ~addr =
  let class_index = class_of_object t addr in
  let tmpl = (loaded_class t class_index).lc_class.Emc.Compile.cc_template in
  let refs = ref [] in
  Array.iteri
    (fun i (_, ty) ->
      (* only object references participate in the attached closure;
         strings and vectors are value aggregates *)
      match ty with
      | Emc.Ast.Tobj _ when tmpl.Emc.Template.ct_attached.(i) ->
        let v = Mem.load32_bits t.kmem (addr + L.field_offset i) in
        if v <> 0 then refs := v :: !refs
      | _ -> ())
    tmpl.Emc.Template.ct_fields;
  List.rev !refs

(* Value conversion --------------------------------------------------------- *)

let rec value_of_raw t ty raw =
  match (ty : Emc.Ast.typ) with
  | Emc.Ast.Tint -> Value.Vint raw
  | Emc.Ast.Tbool -> Value.Vbool (raw <> 0l)
  | Emc.Ast.Treal -> Value.Vreal (Isa.Float_format.decode t.karch.A.float_format raw)
  | Emc.Ast.Tstring ->
    if Int32.equal raw 0l then Value.Vnil else Value.Vstr (read_string_block t (Int32.to_int raw))
  | Emc.Ast.Tvec elem ->
    if Int32.equal raw 0l then Value.Vnil
    else begin
      let addr = Int32.to_int raw in
      let len = Int32.to_int (Mem.load32 t.kmem (addr + L.vec_len)) in
      Value.Vvec
        ( elem,
          Array.init len (fun i ->
              value_of_raw t elem (Mem.load32 t.kmem (addr + L.vec_elems + (4 * i)))) )
    end
  | Emc.Ast.Tobj _ | Emc.Ast.Tnil ->
    if Int32.equal raw 0l then Value.Vnil else Value.Vref (oid_at t (Int32.to_int raw))

let rec raw_of_value t v =
  match (v : Value.t) with
  | Value.Vint x -> x
  | Value.Vbool b -> if b then 1l else 0l
  | Value.Vreal x -> Isa.Float_format.encode t.karch.A.float_format x
  | Value.Vstr s -> Int32.of_int (make_string t s)
  | Value.Vref oid -> Int32.of_int (ensure_ref t oid)
  | Value.Vvec (elem, xs) ->
    let addr = make_vector t ~kind:(L.kind_of_typ elem) ~len:(Array.length xs) in
    Array.iteri
      (fun i x -> Mem.store32 t.kmem (addr + L.vec_elems + (4 * i)) (raw_of_value t x))
      xs;
    Int32.of_int addr
  | Value.Vnil -> 0l

(* Bus stops ------------------------------------------------------------------ *)

let stop_at_pc t pc =
  match Isa.Text.find t.ktext pc with
  | None -> None
  | Some img -> (
    let code_oid = img.Isa.Text.code.Isa.Code.code_oid in
    if Bridge.is_frag_oid code_oid then
      (* suspended inside a bridge fragment: the thread is at the elided
         stop of the real class — same stop id, same frame, so capture
         (and hence re-migration from inside a bridge) needs no special
         case *)
      match Bridge.of_frag_oid t.kbridge code_oid with
      | None -> None
      | Some f ->
        let lc = loaded_class t f.Bridge.fg_class_index in
        Some (lc, Emc.Busstop.by_id lc.lc_stops f.Bridge.fg_stop_id)
    else
      let lc =
        Hashtbl.fold
          (fun _ lc acc ->
            if Int32.equal lc.lc_code.Isa.Code.code_oid code_oid then Some lc else acc)
          t.loaded None
      in
      match lc with
      | None -> None
      | Some lc -> (
        match Emc.Busstop.of_pc lc.lc_stops (pc - img.Isa.Text.base) with
        | Some entry -> Some (lc, entry)
        | None -> None))

let at_stop t (seg : Thread.segment) =
  match seg.Thread.seg_status with
  | Thread.Parked S.Run ->
    seg.Thread.seg_spawn <> None || stop_at_pc t seg.Thread.seg_ctx.M.pc <> None
  | Thread.Parked _ | Thread.Running | Thread.Blocked_monitor _ | Thread.Awaiting_reply _
  | Thread.Dead -> true

let stop_by_id t ~class_index ~stop_id =
  Emc.Busstop.by_id (loaded_class t class_index).lc_stops stop_id

let frame_info t ~class_index ~method_index =
  (loaded_class t class_index).lc_stops.Emc.Busstop.bt_frames.(method_index)

let image_of_class t class_index = (loaded_class t class_index).lc_image
let abs_pc t ~class_index off = (image_of_class t class_index).Isa.Text.base + off

(* Bridge fragments: real target-ISA code generated for a landing thread
   parked at a bus stop this node's instance elided (section 2.4).  The
   fragment polls at the stop — so an armed eviction trap or poll request
   can capture the thread the moment it lands, reporting the same stop —
   then jumps to the stop's resume point in the class image.  No
   source-level action executes in between: exactly-once by
   construction. *)
let ensure_bridge t ~class_index (entry : Emc.Busstop.entry) =
  let lc = loaded_class t class_index in
  let code_oid = lc.lc_code.Isa.Code.code_oid in
  let stop_id = entry.Emc.Busstop.be_id in
  match Bridge.find t.kbridge ~code_oid ~stop_id with
  | Some f -> f
  | None ->
    let cont = lc.lc_image.Isa.Text.base + entry.Emc.Busstop.be_pc in
    let insns = [| Isa.Insn.Poll stop_id; Isa.Insn.Jmp_abs cont |] in
    let frag_oid = Bridge.fresh_oid t.kbridge in
    let code =
      Isa.Code.make ~arch:t.karch ~code_oid:frag_oid
        ~class_name:
          (Printf.sprintf "%s$bridge%d" lc.lc_code.Isa.Code.class_name stop_id)
        ~methods:[||] insns
    in
    let image = Isa.Text.load t.ktext code in
    let f =
      {
        Bridge.fg_oid = frag_oid;
        fg_class_index = class_index;
        fg_stop_id = stop_id;
        fg_base = image.Isa.Text.base;
      }
    in
    Bridge.add t.kbridge ~code_oid f;
    f

(* where a thread parked at [entry] resumes on this node: the stop's PC
   in the class image, or a bridge fragment when this node's instance
   elided the stop *)
let resume_abs t ~class_index (entry : Emc.Busstop.entry) =
  if entry.Emc.Busstop.be_elided then
    (ensure_bridge t ~class_index entry).Bridge.fg_base
  else abs_pc t ~class_index entry.Emc.Busstop.be_pc

(* Threads --------------------------------------------------------------------- *)

let segments t = Hashtbl.fold (fun _ s acc -> s :: acc) t.segs []
let find_segment t id = Hashtbl.find_opt t.segs id

let fresh_tid t =
  t.tid_serial <- t.tid_serial + 1;
  Thread.fresh_tid ~node_id:t.knode_id ~serial:t.tid_serial

let fresh_seg_id t =
  t.seg_serial <- t.seg_serial + 1;
  Thread.fresh_seg_id ~node_id:t.knode_id ~serial:t.seg_serial

let stack_size = 32 * 1024
let stack_bytes = stack_size

let alloc_stack t =
  let base = Heap.alloc t.kheap stack_size in
  base + stack_size

let enqueue_ready t seg =
  Queue.add seg t.run_queue;
  let d = Queue.length t.run_queue in
  if d > t.peak_ready then t.peak_ready <- d

let register_segment t seg =
  (match Hashtbl.find_opt t.segs seg.Thread.seg_id with
  | Some old when old != seg -> old.Thread.seg_live <- false
  | _ -> ());
  seg.Thread.seg_live <- true;
  Hashtbl.replace t.segs seg.Thread.seg_id seg;
  Hashtbl.remove t.seg_forwards seg.Thread.seg_id;
  match seg.Thread.seg_status with
  | Thread.Parked _ -> enqueue_ready t seg
  | Thread.Running | Thread.Blocked_monitor _ | Thread.Awaiting_reply _ | Thread.Dead ->
    ()

let unregister_segment t seg =
  (match Hashtbl.find_opt t.segs seg.Thread.seg_id with
  | Some cur -> cur.Thread.seg_live <- false
  | None -> ());
  seg.Thread.seg_live <- false;
  Hashtbl.remove t.segs seg.Thread.seg_id;
  Hashtbl.remove t.evict_arms seg.Thread.seg_id
let set_seg_forward t ~seg_id ~node = Hashtbl.replace t.seg_forwards seg_id node
let seg_forward t ~seg_id = Hashtbl.find_opt t.seg_forwards seg_id

(* seed a fresh segment's context so the method prologue finds self and the
   arguments where the calling convention puts them, with the sentinel
   return address 0 marking the bottom of the segment *)
let seed_call_frame t ctx ~stack_top ~target_addr ~entry_pc ~raw_args =
  (* the target lands in a register (SPARC) or a fresh frame slot — grey
     it if a mark cycle is in progress *)
  graft_addr t target_addr;
  let family = t.karch.A.family in
  (match family with
  | A.Vax | A.M68k ->
    let sp = ref stack_top in
    let push v =
      sp := !sp - 4;
      Mem.store32 t.kmem !sp v
    in
    List.iter push (List.rev raw_args);
    push (Int32.of_int target_addr);
    push 0l;
    (* sentinel return address *)
    M.set_sp ctx !sp;
    M.set_fp ctx 0
  | A.Sparc ->
    M.set_reg ctx 8 (Int32.of_int target_addr);
    List.iteri (fun i v -> M.set_reg ctx (8 + 1 + i) v) raw_args;
    M.set_reg ctx 15 0l;
    (* %o7 sentinel *)
    M.set_sp ctx stack_top);
  ctx.M.pc <- entry_pc

let spawn_exact t ~(spawn : Thread.spawn_info) ~link ~thread ~seg_id ~status =
  let class_index = spawn.Thread.si_class in
  let method_index = spawn.Thread.si_method in
  let args = spawn.Thread.si_args in
  let target_addr =
    match find_object t spawn.Thread.si_target with
    | Some addr -> addr
    | None ->
      error "spawn: target %s is not resident on node %d"
        (Oid.to_string spawn.Thread.si_target)
        t.knode_id
  in
  let lc = loaded_class t class_index in
  let minfo = lc.lc_code.Isa.Code.methods.(method_index) in
  let result_type =
    let op = lc.lc_class.Emc.Compile.cc_template.Emc.Template.ct_ops.(method_index) in
    Option.map
      (fun v ->
        let _, ty, _ = op.Emc.Template.ot_vars.(v) in
        ty)
      op.Emc.Template.ot_result_var
  in
  let stack_top = alloc_stack t in
  let ctx = M.create_ctx t.karch in
  let raw_args = List.map (raw_of_value t) args in
  seed_call_frame t ctx ~stack_top ~target_addr
    ~entry_pc:(lc.lc_image.Isa.Text.base + minfo.Isa.Code.entry_offset)
    ~raw_args;
  let seg =
    {
      Thread.seg_id;
      seg_thread = thread;
      seg_status = status;
      seg_ctx = ctx;
      seg_stack_top = stack_top;
      seg_stack_bottom = stack_top - stack_size + 256;
      seg_link = link;
      seg_result_type = result_type;
      seg_spawn = Some spawn;
      seg_live = false;
    }
  in
  ctx.M.stack_limit <- seg.Thread.seg_stack_bottom;
  register_segment t seg;
  seg

let spawn_segment t ~target_addr ~class_index ~method_index ~args ~link ~thread =
  let spawn =
    {
      Thread.si_target = oid_at t target_addr;
      si_class = class_index;
      si_method = method_index;
      si_args = args;
    }
  in
  spawn_exact t ~spawn ~link ~thread ~seg_id:(fresh_seg_id t)
    ~status:(Thread.Parked S.Run)

let spawn_root t ~target_addr ~method_name ~args =
  let class_index = class_of_object t target_addr in
  let lc = loaded_class t class_index in
  let method_index =
    match Isa.Code.method_by_name lc.lc_code method_name with
    | Some m -> m.Isa.Code.method_index
    | None ->
      error "object %s has no operation %s"
        lc.lc_class.Emc.Compile.cc_name method_name
  in
  let tid = fresh_tid t in
  ignore (spawn_segment t ~target_addr ~class_index ~method_index ~args ~link:None ~thread:tid);
  tid

let spawn_rpc t ~target_addr ~callee_class ~callee_method ~args ~link ~thread =
  spawn_segment t ~target_addr ~class_index:callee_class ~method_index:callee_method
    ~args ~link:(Some link) ~thread

(* start an object's process section as an independent thread *)
let start_process_if_any t ~target_addr =
  let class_index = class_of_object t target_addr in
  let lc = loaded_class t class_index in
  match Isa.Code.method_by_name lc.lc_code "$process" with
  | None -> None
  | Some m ->
    let tid = fresh_tid t in
    ignore
      (spawn_segment t ~target_addr ~class_index ~method_index:m.Isa.Code.method_index
         ~args:[] ~link:None ~thread:tid);
    Some tid

let deliver_result t seg value =
  match seg.Thread.seg_status with
  | Thread.Awaiting_reply { stop_id } ->
    (* resume at the canonical stop PC with the value in the return-value
       register (applied at dispatch) *)
    let pc = seg.Thread.seg_ctx.M.pc in
    let class_index =
      match Isa.Text.find t.ktext pc with
      | Some img -> (
        let code_oid = img.Isa.Text.code.Isa.Code.code_oid in
        match
          Hashtbl.fold
            (fun idx lc acc ->
              if Int32.equal lc.lc_code.Isa.Code.code_oid code_oid then Some idx else acc)
            t.loaded None
        with
        | Some i -> i
        | None -> error "deliver_result: code not loaded")
      | None -> error "deliver_result: PC outside text"
    in
    let entry = stop_by_id t ~class_index ~stop_id in
    let lc = loaded_class t class_index in
    seg.Thread.seg_ctx.M.pc <- lc.lc_image.Isa.Text.base + entry.Emc.Busstop.be_pc;
    seg.Thread.seg_status <- Thread.Parked (S.Deliver value);
    enqueue_ready t seg
  | Thread.Parked _ | Thread.Running | Thread.Blocked_monitor _ | Thread.Dead ->
    error "deliver_result: segment %d is not awaiting a reply" seg.Thread.seg_id

let root_result t tid = Hashtbl.find_opt t.root_results tid
let iter_root_results t f = Hashtbl.iter f t.root_results

(* Monitors ------------------------------------------------------------------- *)

let monitor_locked t ~obj_addr = Mem.load32 t.kmem (obj_addr + L.obj_lock) <> 0l

let set_monitor_locked t ~obj_addr v =
  Mem.store32 t.kmem (obj_addr + L.obj_lock) (if v then 1l else 0l)

let queue_insert_tail t ~sent ~qnode =
  let last = Int32.to_int (Mem.load32 t.kmem (sent + 4)) in
  Mem.store32 t.kmem (qnode + L.qnode_flink) (Int32.of_int sent);
  Mem.store32 t.kmem (qnode + L.qnode_blink) (Int32.of_int last);
  Mem.store32 t.kmem (last + L.qnode_flink) (Int32.of_int qnode);
  Mem.store32 t.kmem (sent + 4) (Int32.of_int qnode)

let queue_unlink_head t ~sent =
  let first = Int32.to_int (Mem.load32 t.kmem sent) in
  if first = sent then None
  else begin
    let next = Mem.load32 t.kmem first in
    Mem.store32 t.kmem sent next;
    Mem.store32 t.kmem (Int32.to_int next + 4) (Int32.of_int sent);
    Some first
  end

let class_geometry t ~obj_addr =
  let class_index = class_of_object t obj_addr in
  let tmpl = (loaded_class t class_index).lc_class.Emc.Compile.cc_template in
  ( Array.length tmpl.Emc.Template.ct_fields,
    Array.length tmpl.Emc.Template.ct_conditions )

let cond_sentinel_addr t ~obj_addr ~cond =
  let nfields, _ = class_geometry t ~obj_addr in
  obj_addr + L.cond_sentinel ~nfields cond

let waiters_of_sentinel t sent =
  let rec walk node acc =
    if node = sent then List.rev acc
    else
      let seg_id = Int32.to_int (Mem.load32 t.kmem (node + L.qnode_thread)) in
      let acc =
        match find_segment t seg_id with
        | Some seg -> seg :: acc
        | None -> acc
      in
      walk (Int32.to_int (Mem.load32 t.kmem node)) acc
  in
  walk (Int32.to_int (Mem.load32 t.kmem sent)) []

let monitor_waiters t ~obj_addr = waiters_of_sentinel t (obj_addr + L.obj_qflink)

let condition_waiters t ~obj_addr ~cond =
  waiters_of_sentinel t (cond_sentinel_addr t ~obj_addr ~cond)

let block_on_queue t ~obj_addr ~cond ?deadline seg =
  let qnode = Heap.alloc t.kheap L.qnode_size in
  Mem.store32 t.kmem (qnode + L.qnode_thread) (Int32.of_int seg.Thread.seg_id);
  let sent =
    if cond < 0 then obj_addr + L.obj_qflink else cond_sentinel_addr t ~obj_addr ~cond
  in
  queue_insert_tail t ~sent ~qnode;
  seg.Thread.seg_status <-
    Thread.Blocked_monitor { mon_addr = obj_addr; qnode; cond; deadline }

let block_on_monitor t ~obj_addr seg = block_on_queue t ~obj_addr ~cond:(-1) seg

let monitor_enqueue_blocked t ~obj_addr ?(cond = -1) ?deadline seg =
  block_on_queue t ~obj_addr ~cond ?deadline seg

(* splice a queue node out of whatever circular queue holds it *)
let queue_unlink t ~qnode =
  let flink = Mem.load32 t.kmem (qnode + L.qnode_flink) in
  let blink = Mem.load32 t.kmem (qnode + L.qnode_blink) in
  Mem.store32 t.kmem (Int32.to_int blink + L.qnode_flink) flink;
  Mem.store32 t.kmem (Int32.to_int flink + L.qnode_blink) blink

(* System-call dispatch --------------------------------------------------------- *)

let syscall_raw_args t ctx ~argc =
  match t.karch.A.family with
  | A.Vax | A.M68k ->
    let sp = M.sp ctx in
    List.init argc (fun i -> Mem.load32 t.kmem (sp + (4 * i)))
  | A.Sparc -> List.init argc (fun i -> M.reg ctx (8 + i))

let retval_reg t =
  match t.karch.A.family with
  | A.Vax -> 0
  | A.M68k -> 0
  | A.Sparc -> 8 (* %o0 *)

let complete_syscall t seg ~(entry : Emc.Busstop.entry) ~retval =
  let ctx = seg.Thread.seg_ctx in
  (match retval with
  | Some v -> M.set_reg ctx (retval_reg t) v
  | None -> ());
  (match t.karch.A.family with
  | A.Vax | A.M68k -> M.set_sp ctx (M.sp ctx + entry.Emc.Busstop.be_pop_bytes)
  | A.Sparc -> ());
  M.syscall_resume ctx ~text:t.ktext

type dispatch =
  | D_done of Value.t option
      (** service complete: park the segment at the stop with the result
          pending (applied at its next dispatch, so the segment remains
          capturable at a bus stop in the meantime) *)
  | D_done_dequeue of int option  (** monitor-exit dequeue: waiter segment id *)
  | D_blocked  (** the segment blocked; do not complete *)
  | D_local of Thread.segment  (** a locally spawned callee segment *)
  | D_out of outcall  (** cluster-level action; do not complete here *)

(* release the monitor (hand the lock to the next entry-queue waiter or
   clear it — the kernel-side equivalent of the exit sequence), then
   block on the condition's queue; on wake the monitor has been
   re-granted and the wait system call completes.  [deadline] arms a
   timed wait: if no signal arrives by that virtual time, the waiter
   re-queues for monitor entry on its own (see [expire_timeouts]). *)
let cond_wait t seg ~obj ~cond ~deadline =
  (match queue_unlink_head t ~sent:(obj + L.obj_qflink) with
  | Some qnode ->
    let waiter = Int32.to_int (Mem.load32 t.kmem (qnode + L.qnode_thread)) in
    Heap.free t.kheap ~addr:qnode ~size:L.qnode_size;
    (match find_segment t waiter with
    | Some w ->
      w.Thread.seg_status <- Thread.Parked (S.Complete None);
      enqueue_ready t w
    | None -> error "condition wait: unknown entry waiter %d" waiter)
  | None -> set_monitor_locked t ~obj_addr:obj false);
  block_on_queue t ~obj_addr:obj ~cond ?deadline seg;
  D_blocked

let format_real t raw =
  let x = Isa.Float_format.decode t.karch.A.float_format raw in
  Printf.sprintf "%g" x

let param_types_of t ~callee_class ~callee_method =
  let prog = program t in
  let cc = Emc.Compile.class_by_index prog callee_class in
  let op = cc.Emc.Compile.cc_template.Emc.Template.ct_ops.(callee_method) in
  (* parameters occupy var ids 1 .. nparams-1 (0 is self) *)
  List.init
    (op.Emc.Template.ot_nparams - 1)
    (fun i ->
      let _, ty, _ = op.Emc.Template.ot_vars.(i + 1) in
      ty)

let dispatch_syscall t seg (lc : loaded_class) (entry : Emc.Busstop.entry) nr =
  let ctx = seg.Thread.seg_ctx in
  t.syscalls <- t.syscalls + 1;
  charge_insns t 60;
  (* trap + kernel entry/exit *)
  if nr = Emc.Sysno.sys_invoke then begin
    match entry.Emc.Busstop.be_kind with
    | Emc.Ir.Sk_invoke { argc; callee_class; callee_method; _ } ->
      let raws = syscall_raw_args t ctx ~argc:(argc + 1) in
      let target_addr, arg_raws =
        match raws with
        | target :: rest -> (Int32.to_int target, rest)
        | [] -> assert false
      in
      if target_addr = 0 then error "invocation of nil";
      let local_addr =
        if is_resident t target_addr then Some target_addr
        else
          (* a stale proxy for an object that is actually here (it came
             home after the proxy was created): call locally, fixing the
             self argument to the resident descriptor *)
          find_object t (oid_at t target_addr)
      in
      let types = param_types_of t ~callee_class ~callee_method in
      let args = List.map2 (fun ty raw -> value_of_raw t ty raw) types arg_raws in
      let stop_id = entry.Emc.Busstop.be_id in
      (match local_addr with
      | Some real_addr ->
        (* the object is here after all (a stale proxy, or code loaded
           behind the fast path's back): run the invocation as a local
           child segment so the caller stays parked at its bus stop *)
        ignore lc;
        seg.Thread.seg_status <- Thread.Awaiting_reply { stop_id };
        let callee =
          spawn_rpc t ~target_addr:real_addr ~callee_class ~callee_method ~args
            ~link:{ Thread.ln_node = t.knode_id; ln_seg = seg.Thread.seg_id }
            ~thread:seg.Thread.seg_thread
        in
        D_local callee
      | None ->
        let target_oid = oid_at t target_addr in
        let hint_node = proxy_hint t target_addr in
        seg.Thread.seg_status <- Thread.Awaiting_reply { stop_id };
        D_out
          (Oc_invoke
             { seg; target_oid; hint_node; callee_class; callee_method; args; stop_id }))
    | Emc.Ir.Sk_new _ | Emc.Ir.Sk_builtin _ | Emc.Ir.Sk_loop | Emc.Ir.Sk_mon_enter
    | Emc.Ir.Sk_mon_dequeue | Emc.Ir.Sk_mon_wake ->
      error "invoke system call at a non-invoke stop"
  end
  else if nr = Emc.Sysno.sys_new then begin
    let raws = syscall_raw_args t ctx ~argc:1 in
    let class_index = Int32.to_int (List.hd raws) in
    charge_insns t 120;
    let addr = create_object t ~class_index in
    D_done (Some (Value.Vref (oid_at t addr)))
  end
  else if nr = Emc.Sysno.sys_mon_enter then begin
    let raws = syscall_raw_args t ctx ~argc:1 in
    let obj = Int32.to_int (List.hd raws) in
    if obj = 0 then error "monitor entry on nil";
    if monitor_locked t ~obj_addr:obj then begin
      block_on_monitor t ~obj_addr:obj seg;
      D_blocked
    end
    else begin
      set_monitor_locked t ~obj_addr:obj true;
      D_done None
    end
  end
  else if nr = Emc.Sysno.sys_cond_wait then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ obj; cond ] ->
      cond_wait t seg ~obj:(Int32.to_int obj) ~cond:(Int32.to_int cond)
        ~deadline:None
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_cond_wait_timed then begin
    let raws = syscall_raw_args t ctx ~argc:3 in
    match raws with
    | [ obj; cond; timeout ] ->
      let deadline =
        Some (time_us t +. Float.max 0.0 (Int32.to_float timeout))
      in
      cond_wait t seg ~obj:(Int32.to_int obj) ~cond:(Int32.to_int cond) ~deadline
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_cond_signal then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ obj; cond ] ->
      let obj = Int32.to_int obj and cond = Int32.to_int cond in
      (* Mesa semantics: the signalled waiter re-queues for monitor entry
         and runs once the signaller (or a later holder) leaves *)
      (match queue_unlink_head t ~sent:(cond_sentinel_addr t ~obj_addr:obj ~cond) with
      | None -> ()
      | Some qnode ->
        queue_insert_tail t ~sent:(obj + L.obj_qflink) ~qnode;
        let waiter = Int32.to_int (Mem.load32 t.kmem (qnode + L.qnode_thread)) in
        (match find_segment t waiter with
        | Some w -> (
          match w.Thread.seg_status with
          | Thread.Blocked_monitor { mon_addr; qnode = q; cond = _; deadline = _ } ->
            w.Thread.seg_status <-
              Thread.Blocked_monitor
                { mon_addr; qnode = q; cond = -1; deadline = None }
          | _ -> ())
        | None -> ()));
      D_done None
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_cond_notify_all then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ obj; cond ] ->
      let obj = Int32.to_int obj and cond = Int32.to_int cond in
      (* move every condition waiter to the entry queue, preserving queue
         order (Mesa notify-all: each re-acquires the monitor in turn) *)
      let sent = cond_sentinel_addr t ~obj_addr:obj ~cond in
      let rec drain () =
        match queue_unlink_head t ~sent with
        | None -> ()
        | Some qnode ->
          queue_insert_tail t ~sent:(obj + L.obj_qflink) ~qnode;
          let waiter = Int32.to_int (Mem.load32 t.kmem (qnode + L.qnode_thread)) in
          (match find_segment t waiter with
          | Some w -> (
            match w.Thread.seg_status with
            | Thread.Blocked_monitor { mon_addr; qnode = q; cond = _; deadline = _ } ->
              w.Thread.seg_status <-
                Thread.Blocked_monitor
                  { mon_addr; qnode = q; cond = -1; deadline = None }
            | _ -> ())
          | None -> ());
          drain ()
      in
      drain ();
      D_done None
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_mon_exit_dequeue then begin
    let raws = syscall_raw_args t ctx ~argc:1 in
    let obj = Int32.to_int (List.hd raws) in
    match queue_unlink_head t ~sent:(obj + L.obj_qflink) with
    | Some qnode ->
      let waiter = Int32.to_int (Mem.load32 t.kmem (qnode + L.qnode_thread)) in
      Heap.free t.kheap ~addr:qnode ~size:L.qnode_size;
      (* mark the waiter as dequeued-but-not-woken *)
      (match find_segment t waiter with
      | Some w -> (
        match w.Thread.seg_status with
        | Thread.Blocked_monitor { mon_addr; _ } ->
          w.Thread.seg_status <-
            Thread.Blocked_monitor
              { mon_addr; qnode = 0; cond = -1; deadline = None }
        | _ -> ())
      | None -> ());
      D_done_dequeue (Some waiter)
    | None -> D_done_dequeue None
  end
  else if nr = Emc.Sysno.sys_mon_wake then begin
    let raws = syscall_raw_args t ctx ~argc:1 in
    let qnode = Int32.to_int (List.hd raws) in
    let seg_id = Int32.to_int (Mem.load32 t.kmem (qnode + L.qnode_thread)) in
    (match find_segment t seg_id with
    | Some waiter ->
      waiter.Thread.seg_status <- Thread.Parked (S.Complete None);
      enqueue_ready t waiter
    | None -> error "monitor wake: unknown segment %d" seg_id);
    Heap.free t.kheap ~addr:qnode ~size:L.qnode_size;
    D_done None
  end
  else if nr = Emc.Sysno.sys_print_int then begin
    let v = List.hd (syscall_raw_args t ctx ~argc:1) in
    print_string_out t (Int32.to_string v);
    D_done None
  end
  else if nr = Emc.Sysno.sys_print_real then begin
    let v = List.hd (syscall_raw_args t ctx ~argc:1) in
    print_string_out t (format_real t v);
    D_done None
  end
  else if nr = Emc.Sysno.sys_print_bool then begin
    let v = List.hd (syscall_raw_args t ctx ~argc:1) in
    print_string_out t (if Int32.equal v 0l then "false" else "true");
    D_done None
  end
  else if nr = Emc.Sysno.sys_print_str then begin
    let v = Int32.to_int (List.hd (syscall_raw_args t ctx ~argc:1)) in
    print_string_out t (if v = 0 then "nil" else read_string_block t v);
    D_done None
  end
  else if nr = Emc.Sysno.sys_print_ref then begin
    let v = Int32.to_int (List.hd (syscall_raw_args t ctx ~argc:1)) in
    print_string_out t
      (if v = 0 then "nil"
       else if is_vector_block t v then
         Printf.sprintf "vector[%ld]" (Mem.load32 t.kmem (v + L.vec_len))
       else Oid.to_string (oid_at t v));
    D_done None
  end
  else if nr = Emc.Sysno.sys_print_nl then begin
    print_string_out t "\n";
    D_done None
  end
  else if nr = Emc.Sysno.sys_locate then begin
    let v = Int32.to_int (List.hd (syscall_raw_args t ctx ~argc:1)) in
    if v = 0 then error "locate of nil";
    let node = if is_resident t v then t.knode_id else proxy_hint t v in
    D_done (Some (Value.Vint (Int32.of_int node)))
  end
  else if nr = Emc.Sysno.sys_thisnode then
    D_done (Some (Value.Vint (Int32.of_int t.knode_id)))
  else if nr = Emc.Sysno.sys_timenow then
    D_done (Some (Value.Vint (Int32.of_float (Sim.Clock.now t.kclock))))
  else if nr = Emc.Sysno.sys_move then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ obj; node ] ->
      let obj_addr = Int32.to_int obj in
      if obj_addr = 0 then error "move of nil";
      D_out (Oc_move { seg; obj_addr; dest_node = Int32.to_int node })
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_sconcat then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ a; b ] ->
      let sa = read_string_block t (Int32.to_int a) in
      let sb = read_string_block t (Int32.to_int b) in
      charge_insns t (10 * (String.length sa + String.length sb));
      D_done (Some (Value.Vstr (sa ^ sb)))
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_seq then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ a; b ] ->
      let sa = read_string_block t (Int32.to_int a) in
      let sb = read_string_block t (Int32.to_int b) in
      D_done (Some (Value.Vbool (String.equal sa sb)))
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_vec_new then begin
    let raws = syscall_raw_args t ctx ~argc:2 in
    match raws with
    | [ kind; len ] ->
      let len = Int32.to_int len in
      if len < 0 then error "vector length %d is negative" len;
      charge_insns t (60 + len);
      let elem = typ_of_kind (Int32.to_int kind) in
      D_done (Some (Value.Vvec (elem, Array.make len (default_value_of_typ elem))))
    | _ -> assert false
  end
  else if nr = Emc.Sysno.sys_bounds then begin
    let idx = List.hd (syscall_raw_args t ctx ~argc:1) in
    error "vector index %ld out of bounds" idx
  end
  else if nr = Emc.Sysno.sys_start_process then begin
    let obj = Int32.to_int (List.hd (syscall_raw_args t ctx ~argc:1)) in
    charge_insns t 150;
    if is_resident t obj then begin
      ignore (start_process_if_any t ~target_addr:obj);
      D_done None
    end
    else begin
      (* the object moved away while its initially ran: the process must
         start where the object now lives; the creator continues *)
      seg.Thread.seg_status <- Thread.Parked (S.Complete None);
      enqueue_ready t seg;
      D_out
        (Oc_start_process { target_oid = oid_at t obj; hint_node = proxy_hint t obj })
    end
  end
  else error "unknown system call %d" nr

(* Scheduling ---------------------------------------------------------------- *)

let has_ready t = not (Queue.is_empty t.run_queue)
let live_segment_count t = Hashtbl.length t.segs

let apply_resume t seg =
  let ctx = seg.Thread.seg_ctx in
  match seg.Thread.seg_status with
  | Thread.Parked S.Run -> ()
  | Thread.Parked (S.Deliver v) ->
    M.set_reg ctx (retval_reg t) (raw_of_value t v)
  | Thread.Parked (S.Complete v) -> (
    match stop_at_pc t ctx.M.pc with
    | Some (_, entry) ->
      complete_syscall t seg ~entry ~retval:(Option.map (raw_of_value t) v)
    | None -> error "segment %d: completion PC is not a bus stop" seg.Thread.seg_id)
  | Thread.Parked (S.Complete_dequeue waiter) -> (
    match stop_at_pc t ctx.M.pc with
    | Some (_, entry) ->
      let retval =
        match waiter with
        | None -> 0l
        | Some seg_id ->
          (* fabricate the queue node the generated code hands to the wake
             system call *)
          let qnode = Heap.alloc t.kheap L.qnode_size in
          Mem.store32 t.kmem (qnode + L.qnode_thread) (Int32.of_int seg_id);
          Int32.of_int qnode
      in
      complete_syscall t seg ~entry ~retval:(Some retval)
    | None -> error "segment %d: completion PC is not a bus stop" seg.Thread.seg_id)
  | Thread.Parked _ | Thread.Running | Thread.Blocked_monitor _
  | Thread.Awaiting_reply _ | Thread.Dead ->
    error "apply_resume: segment %d is not resumable" seg.Thread.seg_id

(* Forced eviction.  [evict_thread] arms a trap: the segment's id maps to
   its eviction destination in [evict_arms].  While armed, every dispatch
   of that segment runs with [poll_requested] pinned, so the CPU hands
   control back at the very next bus stop — no cooperative poll request by
   other ready work is needed.  The trap fires as soon as the segment is
   capturable: parked at a stop, blocked on a monitor queue, or awaiting a
   remote reply. *)

let capturable t (seg : Thread.segment) =
  seg.Thread.seg_live
  && (match seg.Thread.seg_status with
     | Thread.Running | Thread.Dead -> false
     | Thread.Parked S.Run ->
       (* A segment parked at a system-call stop PRE-execution (only
          reachable via [advance_to_stop] after preemption) still holds
          its call arguments in machine-dependent form — pushed on the
          stack on the CISCs, staged in out-registers on SPARC — and
          those are not part of the stop's canonical slot map.  Capturing
          here would re-execute the call on the target with lost
          arguments.  Defer: the trap stays armed and fires one dispatch
          later, at the post-execution [Parked (Complete _)] parking,
          where the arguments are consumed and state is slot-canonical. *)
       seg.Thread.seg_spawn <> None
       || (match stop_at_pc t seg.Thread.seg_ctx.M.pc with
          | Some (_, entry) -> entry.Emc.Busstop.be_kind = Emc.Ir.Sk_loop
          | None -> false)
     | Thread.Parked _ | Thread.Blocked_monitor _ | Thread.Awaiting_reply _ ->
       true)

let eviction_due t (seg : Thread.segment) =
  match Hashtbl.find_opt t.evict_arms seg.Thread.seg_id with
  | Some arm when capturable t seg -> Some arm
  | _ -> None

(* fire the trap: the segment ships to its destination.  The caller
   (cluster) runs the actual move; from the kernel's point of view the
   segment is gone once the move initiates. *)
let fire_eviction t (seg : Thread.segment) ~dest_node ~armed_us =
  Hashtbl.remove t.evict_arms seg.Thread.seg_id;
  t.evictions <- t.evictions + 1;
  Oc_evict { seg; dest_node; armed_us }

let fire_due_evictions t (seg : Thread.segment) outs =
  match eviction_due t seg with
  | Some (dest_node, armed_us) ->
    outs @ [ fire_eviction t seg ~dest_node ~armed_us ]
  | None -> outs

let evict_thread t ~seg_id ~dest_node =
  match Hashtbl.find_opt t.segs seg_id with
  | None -> []
  | Some seg ->
    if (not seg.Thread.seg_live) || seg.Thread.seg_status = Thread.Dead then []
    else begin
      Hashtbl.replace t.evict_arms seg_id (dest_node, Sim.Clock.now t.kclock);
      (* already parked / blocked / awaiting: capture immediately *)
      fire_due_evictions t seg []
    end

let evictions t = t.evictions
let evictions_armed t = Hashtbl.length t.evict_arms

(* a migrated or finished segment may still sit in the run queue (entries
   are skipped lazily at dispatch); the load signal must not count them *)
let ready_depth t =
  Queue.fold
    (fun acc (seg : Thread.segment) ->
      if seg.Thread.seg_live && Hashtbl.mem t.segs seg.Thread.seg_id then
        acc + 1
      else acc)
    0 t.run_queue

let peak_ready_depth t = t.peak_ready

(* Timed waits.  A [Blocked_monitor] with a deadline re-queues for the
   monitor on its own when virtual time passes the deadline without a
   signal.  The cluster polls [next_timeout] to schedule a wake event and
   calls [expire_timeouts] when it fires. *)

let next_timeout t =
  Hashtbl.fold
    (fun _ seg acc ->
      match seg.Thread.seg_status with
      | Thread.Blocked_monitor { deadline = Some d; _ } when seg.Thread.seg_live
        -> (
        match acc with
        | None -> Some d
        | Some a -> Some (Float.min a d))
      | _ -> acc)
    t.segs None

let expire_timeouts t ~now =
  let due =
    Hashtbl.fold
      (fun _ seg acc ->
        match seg.Thread.seg_status with
        | Thread.Blocked_monitor { deadline = Some d; _ }
          when seg.Thread.seg_live && d <= now -> (d, seg) :: acc
        | _ -> acc)
      t.segs []
    |> List.sort (fun (d1, s1) (d2, s2) ->
           match Float.compare d1 d2 with
           | 0 -> compare s1.Thread.seg_id s2.Thread.seg_id
           | c -> c)
  in
  List.iter
    (fun (_, seg) ->
      match seg.Thread.seg_status with
      | Thread.Blocked_monitor { mon_addr; qnode; cond = _; deadline = _ } ->
        (* a deadline survives only while the waiter sits on a condition
           queue (signal/dequeue clear it), so the qnode is live *)
        queue_unlink t ~qnode;
        if monitor_locked t ~obj_addr:mon_addr then begin
          (* someone holds the monitor: line up for entry exactly like a
             signalled waiter; the wait completes when the lock is handed
             over *)
          queue_insert_tail t ~sent:(mon_addr + L.obj_qflink) ~qnode;
          seg.Thread.seg_status <-
            Thread.Blocked_monitor
              { mon_addr; qnode; cond = -1; deadline = None }
        end
        else begin
          (* monitor free: nobody will ever hand the lock over, so take it
             here and complete the wait directly *)
          Heap.free t.kheap ~addr:qnode ~size:L.qnode_size;
          set_monitor_locked t ~obj_addr:mon_addr true;
          seg.Thread.seg_status <- Thread.Parked (S.Complete None);
          enqueue_ready t seg
        end
      | _ -> ())
    due;
  List.length due

let finish_bottom_return t seg =
  let ctx = seg.Thread.seg_ctx in
  let raw = M.reg ctx (retval_reg t) in
  let value =
    match seg.Thread.seg_result_type with
    | Some ty -> value_of_raw t ty raw
    | None -> Value.Vnil
  in
  seg.Thread.seg_status <- Thread.Dead;
  unregister_segment t seg;
  match seg.Thread.seg_link with
  | Some link ->
    Some (Oc_return { link; value; thread = seg.Thread.seg_thread })
  | None ->
    let result =
      match seg.Thread.seg_result_type with
      | Some _ -> Some value
      | None -> None
    in
    Hashtbl.replace t.root_results seg.Thread.seg_thread result;
    (match t.on_root_result with
    | Some f -> f ~thread:seg.Thread.seg_thread result
    | None -> ());
    None

let step t =
  if Queue.is_empty t.run_queue then []
  else
  let seg = Queue.take t.run_queue in
  match seg.Thread.seg_status with
  | Thread.Dead -> []
  | _ when not seg.Thread.seg_live ->
    [] (* migrated away or superseded since it was enqueued *)
  | _ -> (
    apply_resume t seg;
    seg.Thread.seg_status <- Thread.Running;
    let ctx = seg.Thread.seg_ctx in
    ctx.M.stack_limit <- seg.Thread.seg_stack_bottom;
    ctx.M.poll_requested <-
      (not (Queue.is_empty t.run_queue))
      || Hashtbl.mem t.evict_arms seg.Thread.seg_id;
    let fuel =
      match t.quantum with
      | Some q -> q
      | None -> 50_000_000
    in
    let cycles_before = ctx.M.cycles and insns_before = ctx.M.insns in
    let stop =
      if t.kthreaded then
        Isa.Dispatch.run t.kdispatch ctx ~mem:t.kmem ~text:t.ktext ~fuel
      else M.run ctx ~mem:t.kmem ~text:t.ktext ~fuel
    in
    seg.Thread.seg_spawn <- None;
    t.insns <- t.insns + (ctx.M.insns - insns_before);
    charge_cycles t (ctx.M.cycles - cycles_before);
    let outs =
      match stop with
      | S.Poll ->
        ctx.M.poll_requested <- false;
        ctx.M.skip_poll <- true;
        seg.Thread.seg_status <- Thread.Parked S.Run;
        enqueue_ready t seg;
        []
      | S.Halt ->
        seg.Thread.seg_status <- Thread.Dead;
        unregister_segment t seg;
        []
      | S.Bottom_return -> (
        match finish_bottom_return t seg with
        | Some out -> [ out ]
        | None -> [])
      | S.Syscall nr -> (
        match stop_at_pc t ctx.M.pc with
        | None -> error "system call %d at PC %#x: no bus stop" nr ctx.M.pc
        | Some (lc, entry) -> (
          match dispatch_syscall t seg lc entry nr with
          | D_done retval ->
            (* completion is applied at the segment's next dispatch, so the
               segment stays parked at the bus stop (capturable) meanwhile *)
            seg.Thread.seg_status <- Thread.Parked (S.Complete retval);
            enqueue_ready t seg;
            []
          | D_done_dequeue waiter ->
            seg.Thread.seg_status <- Thread.Parked (S.Complete_dequeue waiter);
            enqueue_ready t seg;
            []
          | D_blocked -> []
          | D_local _callee -> []
          | D_out out -> [ out ]))
      | S.Trap trap ->
        error "node %d, thread %d: %s" t.knode_id seg.Thread.seg_thread
          (Format.asprintf "%a" M.pp_trap trap)
      | S.Fuel -> (
        match t.quantum with
        | Some _ ->
          (* preempted mid-computation, Trellis/Owl style: the PC may not be
             a bus stop; anyone needing a well-defined state must call
             [advance_to_stop] first *)
          seg.Thread.seg_status <- Thread.Parked S.Run;
          enqueue_ready t seg;
          []
        | None ->
          error "node %d, thread %d: ran out of fuel between bus stops (codegen bug)"
            t.knode_id seg.Thread.seg_thread)
      | S.Run | S.Deliver _ | S.Complete _ | S.Complete_dequeue _ ->
        error "segment %d: CPU returned a resume-only suspension"
          seg.Thread.seg_id
    in
    (* an armed eviction fires the moment the segment is capturable *)
    fire_due_evictions t seg outs)

(* Run a preempted segment forward to its next bus stop ("the top layer of
   the runtime system would execute the necessary number of instructions
   to exit the critical region", section 2.2.1 on Trellis/Owl — here the
   instructions run natively).  No system call is dispatched: the segment
   parks AT the stop.  Returns the outcalls of any segment-bottom return
   encountered on the way. *)
let advance_to_stop t (seg : Thread.segment) =
  if at_stop t seg then []
  else begin
    let ctx = seg.Thread.seg_ctx in
    ctx.M.poll_requested <- true;
    let cycles_before = ctx.M.cycles and insns_before = ctx.M.insns in
    let stop =
      if t.kthreaded then
        Isa.Dispatch.run t.kdispatch ctx ~mem:t.kmem ~text:t.ktext
          ~fuel:50_000_000
      else M.run ctx ~mem:t.kmem ~text:t.ktext ~fuel:50_000_000
    in
    t.insns <- t.insns + (ctx.M.insns - insns_before);
    charge_cycles t (ctx.M.cycles - cycles_before);
    match stop with
    | S.Poll ->
      ctx.M.poll_requested <- false;
      ctx.M.skip_poll <- true;
      []
    | S.Syscall _ ->
      (* parked at the system-call instruction; it runs at next dispatch *)
      ctx.M.poll_requested <- false;
      []
    | S.Halt ->
      seg.Thread.seg_status <- Thread.Dead;
      unregister_segment t seg;
      []
    | S.Bottom_return -> (
      ctx.M.poll_requested <- false;
      match finish_bottom_return t seg with
      | Some out -> [ out ]
      | None -> [])
    | S.Trap trap ->
      error "node %d, thread %d: %s" t.knode_id seg.Thread.seg_thread
        (Format.asprintf "%a" M.pp_trap trap)
    | S.Fuel ->
      error "node %d, thread %d: no bus stop reachable (codegen bug)" t.knode_id
        seg.Thread.seg_thread
    | S.Run | S.Deliver _ | S.Complete _ | S.Complete_dequeue _ ->
      error "segment %d: CPU returned a resume-only suspension" seg.Thread.seg_id
  end
