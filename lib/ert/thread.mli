(** Threads as chains of stack segments.

    A thread is a single logical flow of control with a cluster-unique id.
    Its call stack is a chain of {e segments}: contiguous runs of
    activation records, each resident on one node.  New segments appear
    when an invocation crosses nodes (remote invocation) and when
    migration splits a stack because some activation records belong to a
    moving object and some do not (Example 1 of the paper).  When the
    bottom activation record of a segment returns, the result travels
    along [seg_link] to the segment below, possibly on another node. *)

type tid = int

type link = {
  ln_node : int;
  ln_seg : int;  (** segment id to deliver the return value to *)
}

type suspension = Value.t Isa.Suspend.t
(** How a parked segment resumes: the shared {!Isa.Suspend.t}
    instantiated at the runtime value type.  Only the resumable subset
    (see the invariant table in suspend.mli) is ever stored here. *)

type status =
  | Parked of suspension
      (** the segment is a first-class resumable value owned by the
          kernel: at a bus stop (or between stops only for [Run] under a
          preemptive quantum), with the pending resume action recorded *)
  | Running
  | Blocked_monitor of {
      mon_addr : int;  (** descriptor of the object whose monitor we await *)
      qnode : int;  (** our wait-queue node; 0 when already dequeued and
                        awaiting the wake *)
      cond : int;
          (** -1: the monitor entry queue; otherwise the index of the
              condition variable we are waiting on *)
      deadline : float option;
          (** virtual time at which a timed condition wait gives up;
              cleared when the waiter moves to the entry queue *)
    }
  | Awaiting_reply of { stop_id : int }
  | Dead

type spawn_info = {
  si_target : int32;  (** OID of the target object *)
  si_class : int;
  si_method : int;
  si_args : Value.t list;
}
(** A machine-independent record of how a segment was spawned, kept until
    its first instruction runs: a never-executed segment has no activation
    record at a bus stop yet, so migration ships this instead. *)

type segment = {
  seg_id : int;
  seg_thread : tid;
  mutable seg_status : status;
  seg_ctx : Isa.Machine.ctx;
  mutable seg_stack_top : int;  (** highest address of the stack region *)
  mutable seg_stack_bottom : int;  (** lowest usable address *)
  mutable seg_link : link option;  (** None: bottom of the whole thread *)
  mutable seg_result_type : Emc.Ast.typ option;
      (** result type of the bottom activation record's operation, for
          marshalling the value sent along [seg_link] *)
  mutable seg_spawn : spawn_info option;
  mutable seg_live : bool;
      (** mirror of "this exact record is in its kernel's segment table",
          maintained by [Kernel.register_segment] / [unregister_segment]
          so the dispatch loop can skip superseded queue entries without
          a table probe *)
}

val fresh_tid : node_id:int -> serial:int -> tid
val fresh_seg_id : node_id:int -> serial:int -> int
val pp_status : Format.formatter -> status -> unit
