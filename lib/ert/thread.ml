type tid = int

type link = {
  ln_node : int;
  ln_seg : int;
}

type suspension = Value.t Isa.Suspend.t

type status =
  | Parked of suspension
  | Running
  | Blocked_monitor of {
      mon_addr : int;
      qnode : int;
      cond : int;
      deadline : float option;
    }
  | Awaiting_reply of { stop_id : int }
  | Dead

type spawn_info = {
  si_target : int32;
  si_class : int;
  si_method : int;
  si_args : Value.t list;
}

type segment = {
  seg_id : int;
  seg_thread : tid;
  mutable seg_status : status;
  seg_ctx : Isa.Machine.ctx;
  mutable seg_stack_top : int;
  mutable seg_stack_bottom : int;
  mutable seg_link : link option;
  mutable seg_result_type : Emc.Ast.typ option;
  mutable seg_spawn : spawn_info option;
  mutable seg_live : bool;
}

let fresh_tid ~node_id ~serial = (node_id lsl 20) lor serial
let fresh_seg_id ~node_id ~serial = (node_id lsl 20) lor serial

let pp_status ppf = function
  | Parked Isa.Suspend.Run -> Format.pp_print_string ppf "ready"
  | Parked s -> Format.fprintf ppf "parked (%a)" (Isa.Suspend.pp ~value:Value.pp) s
  | Running -> Format.pp_print_string ppf "running"
  | Blocked_monitor { deadline = Some d; _ } ->
    Format.fprintf ppf "blocked on monitor (timeout at %.1fus)" d
  | Blocked_monitor _ -> Format.pp_print_string ppf "blocked on monitor"
  | Awaiting_reply { stop_id } -> Format.fprintf ppf "awaiting reply at stop %d" stop_id
  | Dead -> Format.pp_print_string ppf "dead"
