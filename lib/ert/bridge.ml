(* Per-node cache of compiled bridge fragments (section 2.4).

   When a thread migrates in parked at a bus stop that has no exact
   correspondent in the node's code instance (-O2 elided a loop Poll),
   the kernel synthesizes a tiny fragment of target-ISA code — a [Poll]
   for the stop followed by an absolute jump to the instance's resume
   point — loads it into text under a synthetic code OID, and resumes
   the thread inside it.  The fragment executes no source-level action,
   so the exactly-once discipline is preserved by construction; a thread
   captured while suspended at the fragment's Poll reports the same bus
   stop, so re-migration from inside a bridge needs no special case.

   Fragments are keyed by (class code OID, stop id) and reused for every
   subsequent landing; hit/miss counts feed the runtime statistics and
   the bench bridge experiment.  Synthetic OIDs are negative — program
   code OIDs are positive 30-bit database keys, so the spaces can never
   collide. *)

type frag = {
  fg_oid : int32;  (* synthetic (negative) code OID of the loaded fragment *)
  fg_class_index : int;
  fg_stop_id : int;
  fg_base : int;  (* absolute address of the fragment's first instruction *)
}

type t = {
  by_stop : (int32 * int, frag) Hashtbl.t;  (* (class code OID, stop id) *)
  by_oid : (int32, frag) Hashtbl.t;
  mutable serial : int;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    by_stop = Hashtbl.create 8;
    by_oid = Hashtbl.create 8;
    serial = 0;
    hits = 0;
    misses = 0;
  }

let fresh_oid t =
  t.serial <- t.serial + 1;
  Int32.of_int (-t.serial)

let is_frag_oid oid = Int32.compare oid 0l < 0

let find t ~code_oid ~stop_id =
  match Hashtbl.find_opt t.by_stop (code_oid, stop_id) with
  | Some f ->
    t.hits <- t.hits + 1;
    Some f
  | None ->
    t.misses <- t.misses + 1;
    None

(* keyed by the class OID for landings, by the fragment OID for PC
   resolution *)
let add t ~code_oid f =
  Hashtbl.replace t.by_stop (code_oid, f.fg_stop_id) f;
  Hashtbl.replace t.by_oid f.fg_oid f

let of_frag_oid t oid = Hashtbl.find_opt t.by_oid oid

(* drop every fragment but keep the cumulative counters and the OID
   serial: fragment base addresses die with the kernel text they were
   loaded into, so a node restart must void them *)
let clear t =
  Hashtbl.reset t.by_stop;
  Hashtbl.reset t.by_oid
let count t = Hashtbl.length t.by_stop
let hits t = t.hits
let misses t = t.misses
