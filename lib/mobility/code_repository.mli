(** The shared code repository.

    Stands in for the NFS-served object-code store of section 3.4: "we use
    NFS to create the illusion that the object code always resides in the
    local disk repository".  Code objects themselves come straight from
    the compiled program (every node shares the {!Emc.Compile.program});
    this module accounts for the fetches so the cost model can charge
    them. *)

type t

val create : ?n_nodes:int -> unit -> t
(** [n_nodes] (default 64) sizes the per-node fetch accounting; it is
    fixed at creation so sharded domains can record without
    synchronisation.  Capped by {!Ert.Oid.max_nodes}. *)

val record_fetch : t -> node:int -> class_index:int -> unit
val total_fetches : t -> int
val fetches_by_node : t -> int -> int
val fetched_classes : t -> node:int -> int list

val plan_cache : t -> Conv_plan.cache
(** Compiled conversion plans, memoized alongside the code they convert
    (keyed by code OID, bus stop and arch pair — see {!Conv_plan}). *)

val dispatch_cache : t -> node:int -> Isa.Dispatch.cache
(** The node's translated-code cache for the threaded-dispatch engine,
    kept next to the conversion plans: per node (sharded domains never
    share tables) and surviving node restarts (the engine's memory
    identity check voids tables of a dead kernel). *)

val bridge_cache : t -> node:int -> Ert.Bridge.t
(** The node's compiled bridge-fragment cache for cross-instance
    landings, kept beside the conversion plans (the paper's repository
    likewise holds the bridging routines with the code).  Counters
    survive node restarts; the fragments are cleared by the restart path
    because they address kernel text. *)

val bridge_stats : t -> int * int
(** Summed (hits, misses) of every node's bridge-fragment cache. *)

val set_program : t -> Emc.Compile.program -> unit
(** Register the loaded program so plans can be compiled on demand;
    invalidates previously cached plans. *)
