module W = Enet.Wire.Writer
module R = Enet.Wire.Reader

type move_object = {
  mo_oid : Ert.Oid.t;
  mo_class : int;
  mo_fields : Ert.Value.t array;
  mo_locked : bool;
  mo_waiters : int list;
  mo_cond_waiters : int list list;
}

type move_payload = {
  mp_src : int;
  mp_opt_level : int;
      (* optimization level of the source node's code instance (Opt.to_int);
         0 rides the historical tags so default-level wire streams stay
         byte-identical, like the location tags *)
  mp_objects : move_object list;
  mp_segments : Mi_frame.mi_segment list;
}

type message =
  | M_invoke of {
      target : Ert.Oid.t;
      callee_class : int;
      callee_method : int;
      args : Ert.Value.t list;
      reply : Ert.Thread.link;
      thread : int;
      forwards : int;
    }
  | M_reply of {
      to_seg : int;
      value : Ert.Value.t;
      thread : int;
    }
  | M_move_req of {
      obj : Ert.Oid.t;
      dest : int;
      forwards : int;
    }
  | M_move of move_payload
  | M_start_process of {
      obj : Ert.Oid.t;
      forwards : int;
    }
  | M_locate of { obj : Ert.Oid.t }
  | M_located of {
      obj : Ert.Oid.t;
      found : bool;
    }
  (* location-subsystem traffic (tags 8..13): produced only when a
     location mode is enabled on the cluster, so the directory-off wire
     stream never contains these tags and stays byte-identical *)
  | M_dir_update of { objs : Ert.Oid.t list; node : int; at : float }
  | M_dir_lookup of { obj : Ert.Oid.t }
  | M_dir_reply of { obj : Ert.Oid.t; node : int; known : bool }
  | M_loc_hint of { obj : Ert.Oid.t; node : int }
  | M_invoke_via of { via : int list; inv : message }
  | M_group_move of move_payload

let tag_invoke = 1
let tag_reply = 2
let tag_move_req = 3
let tag_move = 4
let tag_locate = 5
let tag_located = 6
let tag_start_process = 7
let tag_dir_update = 8
let tag_dir_lookup = 9
let tag_dir_reply = 10
let tag_loc_hint = 11
let tag_invoke_via = 12
let tag_group_move = 13

(* cross-instance moves (source node not at the default -O0 instance):
   same body as tag_move/tag_group_move plus a leading opt-level byte.
   Emitted only by opt-level-configured clusters, so the default wire
   stream never contains these tags and stays byte-identical. *)
let tag_move_at = 14
let tag_group_move_at = 15

let write_list w f xs =
  W.u16 w (List.length xs);
  List.iter (f w) xs

let read_list r f =
  let n = R.u16 r in
  List.init n (fun _ -> f r)

let write_fields ?plans w o =
  let fused =
    match plans with
    | None -> false
    | Some use -> (
      match Conv_plan.fields_plan_for use ~class_index:o.mo_class with
      | Some s when Conv_plan.section_count s = Array.length o.mo_fields ->
        Conv_plan.write_section s w (fun i -> o.mo_fields.(i))
      | Some _ | None -> false)
  in
  if not fused then begin
    W.u16 w (Array.length o.mo_fields);
    Array.iter (Ert.Value.write w) o.mo_fields
  end

let write_object ?plans w o =
  (match plans with
  | Some _ ->
    (* Fused scaffold head: same bytes and the same Bulk-equivalent
       charge (u32 + u16) as the interpretive pair below. *)
    W.raw_u32 w o.mo_oid;
    W.raw_u16 w o.mo_class;
    W.add_charge w ~calls:2 ~bytes:6
  | None ->
    W.u32 w o.mo_oid;
    W.u16 w o.mo_class);
  write_fields ?plans w o;
  W.bool w o.mo_locked;
  write_list w (fun w s -> W.i32 w (Int32.of_int s)) o.mo_waiters;
  write_list w (fun w l -> write_list w (fun w s -> W.i32 w (Int32.of_int s)) l)
    o.mo_cond_waiters

let read_fields ?plans ~mo_class r =
  let fused =
    match plans with
    | None -> None
    | Some use -> (
      match Conv_plan.fields_plan_for use ~class_index:mo_class with
      | Some s -> Conv_plan.read_section s r
      | None -> None)
  in
  match fused with
  | Some fields -> fields
  | None ->
    let n = R.u16 r in
    let fields = Array.make n Ert.Value.Vnil in
    for i = 0 to n - 1 do
      fields.(i) <- Ert.Value.read r
    done;
    fields

(* Blit tier: one conversion call for the whole object image — the
   layout-matched fast path.  Bytes stay identical to the interpretive
   encoding above. *)
let write_list_raw w f xs =
  W.raw_u16 w (List.length xs);
  List.iter (f w) xs

let read_list_raw r f =
  let n = R.raw_u16 r in
  List.init n (fun _ -> f r)

let write_object_blit w o =
  let p0 = W.length w in
  W.raw_u32 w o.mo_oid;
  W.raw_u16 w o.mo_class;
  W.raw_u16 w (Array.length o.mo_fields);
  Array.iter (Ert.Value.write_raw w) o.mo_fields;
  W.raw_u8 w (if o.mo_locked then 1 else 0);
  write_list_raw w (fun w s -> W.raw_u32 w (Int32.of_int s)) o.mo_waiters;
  write_list_raw w
    (fun w l -> write_list_raw w (fun w s -> W.raw_u32 w (Int32.of_int s)) l)
    o.mo_cond_waiters;
  W.add_charge w ~calls:1 ~bytes:(W.length w - p0)

let read_object_blit r =
  let p0 = R.pos r in
  let mo_oid = R.raw_u32 r in
  let mo_class = R.raw_u16 r in
  let n = R.raw_u16 r in
  let mo_fields = Array.make n Ert.Value.Vnil in
  for i = 0 to n - 1 do
    mo_fields.(i) <- Ert.Value.read_raw r
  done;
  let mo_locked = R.raw_u8 r <> 0 in
  let mo_waiters = read_list_raw r (fun r -> Int32.to_int (R.raw_u32 r)) in
  let mo_cond_waiters =
    read_list_raw r (fun r -> read_list_raw r (fun r -> Int32.to_int (R.raw_u32 r)))
  in
  R.add_charge r ~calls:1 ~bytes:(R.pos r - p0);
  { mo_oid; mo_class; mo_fields; mo_locked; mo_waiters; mo_cond_waiters }

let read_object ?plans r =
  let mo_oid, mo_class =
    match plans with
    | Some _ ->
      let off = R.block r 6 in
      R.add_charge r ~calls:2 ~bytes:6;
      (R.get32_at r off, R.get16_at r (off + 4))
    | None ->
      let mo_oid = R.u32 r in
      let mo_class = R.u16 r in
      (mo_oid, mo_class)
  in
  let mo_fields = read_fields ?plans ~mo_class r in
  let mo_locked = R.bool r in
  let mo_waiters = read_list r (fun r -> Int32.to_int (R.i32 r)) in
  let mo_cond_waiters = read_list r (fun r -> read_list r (fun r -> Int32.to_int (R.i32 r))) in
  { mo_oid; mo_class; mo_fields; mo_locked; mo_waiters; mo_cond_waiters }

let rec encode_to ?plans ?(blit = false) w msg =
  match msg with
  | M_invoke { target; callee_class; callee_method; args; reply; thread; forwards } ->
    W.u8 w tag_invoke;
    W.u32 w target;
    W.u16 w callee_class;
    W.u16 w callee_method;
    write_list w Ert.Value.write args;
    W.u16 w reply.Ert.Thread.ln_node;
    W.i32 w (Int32.of_int reply.Ert.Thread.ln_seg);
    W.i32 w (Int32.of_int thread);
    W.u8 w forwards
  | M_reply { to_seg; value; thread } ->
    W.u8 w tag_reply;
    W.i32 w (Int32.of_int to_seg);
    Ert.Value.write w value;
    W.i32 w (Int32.of_int thread)
  | M_move_req { obj; dest; forwards } ->
    W.u8 w tag_move_req;
    W.u32 w obj;
    W.u16 w dest;
    W.u8 w forwards
  | M_move { mp_src; mp_opt_level; mp_objects; mp_segments } ->
    let tag = if mp_opt_level = 0 then tag_move else tag_move_at in
    let lvl_bytes = if mp_opt_level = 0 then 0 else 1 in
    if blit then begin
      W.raw_u8 w tag;
      W.raw_u16 w mp_src;
      if mp_opt_level <> 0 then W.raw_u8 w mp_opt_level;
      W.add_charge w ~calls:1 ~bytes:(3 + lvl_bytes);
      write_list w write_object_blit mp_objects;
      write_list w (Mi_frame.write_segment ~blit:true) mp_segments
    end
    else begin
      (match plans with
      | Some _ ->
        W.raw_u8 w tag;
        W.raw_u16 w mp_src;
        if mp_opt_level <> 0 then W.raw_u8 w mp_opt_level;
        W.add_charge w ~calls:2 ~bytes:(3 + lvl_bytes)
      | None ->
        W.u8 w tag;
        W.u16 w mp_src;
        if mp_opt_level <> 0 then W.u8 w mp_opt_level);
      write_list w (write_object ?plans) mp_objects;
      write_list w (Mi_frame.write_segment ?plans) mp_segments
    end
  | M_start_process { obj; forwards } ->
    W.u8 w tag_start_process;
    W.u32 w obj;
    W.u8 w forwards
  | M_locate { obj } ->
    W.u8 w tag_locate;
    W.u32 w obj
  | M_located { obj; found } ->
    W.u8 w tag_located;
    W.u32 w obj;
    W.bool w found
  | M_dir_update { objs; node; at } ->
    W.u8 w tag_dir_update;
    W.u16 w node;
    W.f64 w at;
    write_list w W.u32 objs
  | M_dir_lookup { obj } ->
    W.u8 w tag_dir_lookup;
    W.u32 w obj
  | M_dir_reply { obj; node; known } ->
    W.u8 w tag_dir_reply;
    W.u32 w obj;
    W.u16 w node;
    W.bool w known
  | M_loc_hint { obj; node } ->
    W.u8 w tag_loc_hint;
    W.u32 w obj;
    W.u16 w node
  | M_invoke_via { via; inv } ->
    (* a chain-walking invoke: the hop trail rides in front of the
       unchanged inner message encoding *)
    W.u8 w tag_invoke_via;
    write_list w W.u16 via;
    encode_to ?plans ~blit w inv
  | M_group_move { mp_src; mp_opt_level; mp_objects; mp_segments } ->
    (* same body layout as M_move; the distinct tag tells the receiver
       to account the transfer as one batched group *)
    let tag = if mp_opt_level = 0 then tag_group_move else tag_group_move_at in
    let lvl_bytes = if mp_opt_level = 0 then 0 else 1 in
    if blit then begin
      W.raw_u8 w tag;
      W.raw_u16 w mp_src;
      if mp_opt_level <> 0 then W.raw_u8 w mp_opt_level;
      W.add_charge w ~calls:1 ~bytes:(3 + lvl_bytes);
      write_list w write_object_blit mp_objects;
      write_list w (Mi_frame.write_segment ~blit:true) mp_segments
    end
    else begin
      (match plans with
      | Some _ ->
        W.raw_u8 w tag;
        W.raw_u16 w mp_src;
        if mp_opt_level <> 0 then W.raw_u8 w mp_opt_level;
        W.add_charge w ~calls:2 ~bytes:(3 + lvl_bytes)
      | None ->
        W.u8 w tag;
        W.u16 w mp_src;
        if mp_opt_level <> 0 then W.u8 w mp_opt_level);
      write_list w (write_object ?plans) mp_objects;
      write_list w (Mi_frame.write_segment ?plans) mp_segments
    end

(* A failed encode (an unmarshalable value, say) must still return the
   pooled buffer, or the pool leaks one buffer per failure.  [encode]
   can free unconditionally — [contents] copies.  [encode_view] frees
   only on the exception path: a successful handoff transfers buffer
   ownership to the view, and the receiver recycles it. *)
let encode ?plans ?blit ~impl ~stats msg =
  let w = W.create ~impl ~stats in
  Fun.protect
    ~finally:(fun () -> W.free w)
    (fun () ->
      encode_to ?plans ?blit w msg;
      W.contents w)

let encode_view ?plans ?blit ~impl ~stats msg =
  let w = W.create ~impl ~stats in
  (try encode_to ?plans ?blit w msg
   with e ->
     W.free w;
     raise e);
  W.handoff w

let rec decode_from ?plans ?(blit = false) r =
  let tag = R.u8 r in
  if tag = tag_invoke then begin
    let target = R.u32 r in
    let callee_class = R.u16 r in
    let callee_method = R.u16 r in
    let args = read_list r Ert.Value.read in
    let ln_node = R.u16 r in
    let ln_seg = Int32.to_int (R.i32 r) in
    let thread = Int32.to_int (R.i32 r) in
    let forwards = R.u8 r in
    M_invoke
      {
        target;
        callee_class;
        callee_method;
        args;
        reply = { Ert.Thread.ln_node; ln_seg };
        thread;
        forwards;
      }
  end
  else if tag = tag_reply then begin
    let to_seg = Int32.to_int (R.i32 r) in
    let value = Ert.Value.read r in
    let thread = Int32.to_int (R.i32 r) in
    M_reply { to_seg; value; thread }
  end
  else if tag = tag_move_req then begin
    let obj = R.u32 r in
    let dest = R.u16 r in
    let forwards = R.u8 r in
    M_move_req { obj; dest; forwards }
  end
  else if tag = tag_move || tag = tag_move_at then begin
    if blit then begin
      let mp_src = R.raw_u16 r in
      let mp_opt_level = if tag = tag_move_at then R.raw_u8 r else 0 in
      R.add_charge r ~calls:1 ~bytes:(if tag = tag_move_at then 3 else 2);
      let mp_objects = read_list r read_object_blit in
      let mp_segments = read_list r (Mi_frame.read_segment ~blit:true) in
      M_move { mp_src; mp_opt_level; mp_objects; mp_segments }
    end
    else begin
      let mp_src = R.u16 r in
      let mp_opt_level = if tag = tag_move_at then R.u8 r else 0 in
      let mp_objects = read_list r (read_object ?plans) in
      let mp_segments = read_list r (Mi_frame.read_segment ?plans) in
      M_move { mp_src; mp_opt_level; mp_objects; mp_segments }
    end
  end
  else if tag = tag_start_process then begin
    let obj = R.u32 r in
    let forwards = R.u8 r in
    M_start_process { obj; forwards }
  end
  else if tag = tag_locate then M_locate { obj = R.u32 r }
  else if tag = tag_located then begin
    let obj = R.u32 r in
    let found = R.bool r in
    M_located { obj; found }
  end
  else if tag = tag_dir_update then begin
    let node = R.u16 r in
    let at = R.f64 r in
    let objs = read_list r R.u32 in
    M_dir_update { objs; node; at }
  end
  else if tag = tag_dir_lookup then M_dir_lookup { obj = R.u32 r }
  else if tag = tag_dir_reply then begin
    let obj = R.u32 r in
    let node = R.u16 r in
    let known = R.bool r in
    M_dir_reply { obj; node; known }
  end
  else if tag = tag_loc_hint then begin
    let obj = R.u32 r in
    let node = R.u16 r in
    M_loc_hint { obj; node }
  end
  else if tag = tag_invoke_via then begin
    let via = read_list r R.u16 in
    let inv = decode_from ?plans ~blit r in
    M_invoke_via { via; inv }
  end
  else if tag = tag_group_move || tag = tag_group_move_at then begin
    if blit then begin
      let mp_src = R.raw_u16 r in
      let mp_opt_level = if tag = tag_group_move_at then R.raw_u8 r else 0 in
      R.add_charge r ~calls:1 ~bytes:(if tag = tag_group_move_at then 3 else 2);
      let mp_objects = read_list r read_object_blit in
      let mp_segments = read_list r (Mi_frame.read_segment ~blit:true) in
      M_group_move { mp_src; mp_opt_level; mp_objects; mp_segments }
    end
    else begin
      let mp_src = R.u16 r in
      let mp_opt_level = if tag = tag_group_move_at then R.u8 r else 0 in
      let mp_objects = read_list r (read_object ?plans) in
      let mp_segments = read_list r (Mi_frame.read_segment ?plans) in
      M_group_move { mp_src; mp_opt_level; mp_objects; mp_segments }
    end
  end
  else failwith (Printf.sprintf "Marshal.decode: corrupt message tag %d" tag)

let decode ?plans ?blit ~impl ~stats data =
  decode_from ?plans ?blit (R.create ~impl ~stats data)

let decode_view ?plans ?blit ~impl ~stats v =
  decode_from ?plans ?blit (R.of_view ~impl ~stats v)

let rec describe = function
  | M_invoke { target; callee_method; _ } ->
    Printf.sprintf "invoke %s.m%d" (Ert.Oid.to_string target) callee_method
  | M_reply { to_seg; _ } -> Printf.sprintf "reply to segment %d" to_seg
  | M_move_req { obj; dest; _ } ->
    Printf.sprintf "move request %s -> node %d" (Ert.Oid.to_string obj) dest
  | M_move { mp_objects; mp_segments; _ } ->
    Printf.sprintf "move of %d object(s), %d thread segment(s)"
      (List.length mp_objects) (List.length mp_segments)
  | M_start_process { obj; _ } ->
    Printf.sprintf "start process of %s" (Ert.Oid.to_string obj)
  | M_locate { obj } -> Printf.sprintf "locate %s?" (Ert.Oid.to_string obj)
  | M_located { obj; found } ->
    Printf.sprintf "located %s: %s" (Ert.Oid.to_string obj)
      (if found then "here" else "not here")
  | M_dir_update { objs; node; _ } ->
    Printf.sprintf "directory update: %d object(s) now at node %d"
      (List.length objs) node
  | M_dir_lookup { obj } -> Printf.sprintf "directory lookup %s?" (Ert.Oid.to_string obj)
  | M_dir_reply { obj; node; known } ->
    if known then
      Printf.sprintf "directory reply %s: node %d" (Ert.Oid.to_string obj) node
    else Printf.sprintf "directory reply %s: unknown" (Ert.Oid.to_string obj)
  | M_loc_hint { obj; node } ->
    Printf.sprintf "location hint %s -> node %d" (Ert.Oid.to_string obj) node
  | M_invoke_via { via; inv } ->
    Printf.sprintf "%s (via %d hop(s))" (describe inv) (List.length via)
  | M_group_move { mp_objects; mp_segments; _ } ->
    Printf.sprintf "group move of %d object(s), %d thread segment(s)"
      (List.length mp_objects) (List.length mp_segments)
