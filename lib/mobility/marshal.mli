(** Mobility and RPC message formats and their network-format encoding.

    Everything that crosses the simulated Ethernet goes through here, via
    the {!Enet.Wire} codecs, so conversion procedure calls and byte counts
    are accounted exactly as the prototype's hand-written routines were. *)

type move_object = {
  mo_oid : Ert.Oid.t;
  mo_class : int;
  mo_fields : Ert.Value.t array;  (** field order = template field order *)
  mo_locked : bool;
  mo_waiters : int list;  (** waiting segment ids, monitor-queue order *)
  mo_cond_waiters : int list list;  (** per condition, in queue order *)
}

type move_payload = {
  mp_src : int;
  mp_opt_level : int;
      (** optimization level of the source node's code instance
          ({!Emc.Opt.to_int}) — the move handshake's negotiation datum:
          the receiver compares it against its own instance and routes
          elided-stop landings through bridge fragments.  Level 0 is
          encoded with the historical message tags, so default wire
          streams stay byte-identical. *)
  mp_objects : move_object list;
  mp_segments : Mi_frame.mi_segment list;
}

type message =
  | M_invoke of {
      target : Ert.Oid.t;
      callee_class : int;
      callee_method : int;
      args : Ert.Value.t list;
      reply : Ert.Thread.link;
      thread : int;
      forwards : int;  (** forwarding hops so far *)
    }
  | M_reply of {
      to_seg : int;
      value : Ert.Value.t;
      thread : int;
    }  (** invocation reply or cross-node segment-bottom return *)
  | M_move_req of {
      obj : Ert.Oid.t;
      dest : int;
      forwards : int;
    }  (** [move X to n] where X was not local: forwarded to X's host *)
  | M_move of move_payload
  | M_start_process of {
      obj : Ert.Oid.t;
      forwards : int;
    }
      (** start the object's process section wherever it now lives (it
          moved during [initially]) *)
  | M_locate of { obj : Ert.Oid.t }
      (** location search probe (Emerald's broadcast, one unicast per
          node): "do you host this object?" *)
  | M_located of {
      obj : Ert.Oid.t;
      found : bool;
    }  (** probe answer; the hosting node is the sender *)
  | M_dir_update of { objs : Ert.Oid.t list; node : int; at : float }
      (** batched location publish to a directory home shard: each OID
          in [objs] is now at [node] as of virtual time [at]
          (last-writer-wins at the receiver) *)
  | M_dir_lookup of { obj : Ert.Oid.t }
      (** ask the object's home shard for its last known location; the
          asker is the network-level sender *)
  | M_dir_reply of { obj : Ert.Oid.t; node : int; known : bool }
      (** home shard's answer; [known = false] means the directory has
          no entry and the asker falls back to a broadcast search *)
  | M_loc_hint of { obj : Ert.Oid.t; node : int }
      (** chain-collapse hint: rewrite your forwarding proxy for [obj]
          to point directly at [node] *)
  | M_invoke_via of { via : int list; inv : message }
      (** a forwarded invoke carrying its hop trail; every node that
          forwards it appends itself to [via], and the node that finally
          hosts the target sends each distinct [via] node an
          {!M_loc_hint}, collapsing the chain it walked.  [inv] is
          always an [M_invoke]. *)
  | M_group_move of move_payload
      (** a batched migration of co-located objects and their attached
          threads in one transfer; body layout is identical to [M_move],
          the tag marks it for group accounting at the receiver *)

val encode :
  ?plans:Conv_plan.use ->
  ?blit:bool ->
  impl:Enet.Wire.impl ->
  stats:Enet.Conversion_stats.t ->
  message ->
  string
(** With [?plans], [M_move] frame and field sections route through
    compiled conversion plans when one applies; the bytes are identical
    either way.  The encode buffer is recycled into the pool.
    With [?blit] (valid only between layout-matched architectures, see
    {!Isa.Arch.same_layout}), move payloads are written verbatim through
    the raw wire path and accounted as one conversion call per
    frame/object; bytes are still identical, [plans] is ignored. *)

val encode_view :
  ?plans:Conv_plan.use ->
  ?blit:bool ->
  impl:Enet.Wire.impl ->
  stats:Enet.Conversion_stats.t ->
  message ->
  Enet.Wire.view
(** Like {!encode} but hands the pooled buffer off as a view instead of
    copying it into a string; pass to {!Enet.Netsim.send_view} and
    {!Enet.Wire.release_view} after decoding. *)

val decode :
  ?plans:Conv_plan.use ->
  ?blit:bool ->
  impl:Enet.Wire.impl ->
  stats:Enet.Conversion_stats.t ->
  string ->
  message

val decode_view :
  ?plans:Conv_plan.use ->
  ?blit:bool ->
  impl:Enet.Wire.impl ->
  stats:Enet.Conversion_stats.t ->
  Enet.Wire.view ->
  message

val describe : message -> string
