module K = Ert.Kernel
module T = Ert.Thread
module Mem = Isa.Memory
module L = Emc.Layout

type send = {
  snd_dest : int;
  snd_msg : Marshal.message;
}

let fail fmt = Format.kasprintf (fun m -> raise (K.Runtime_error m)) fmt

(* union of attached-reference closures over several roots, one shared
   visited set so overlapping closures contribute each object once, in
   root order *)
let closure_of_roots k roots =
  let seen = Hashtbl.create 8 in
  let rec go addr acc =
    if Hashtbl.mem seen addr || not (K.is_resident k addr) then acc
    else begin
      Hashtbl.replace seen addr ();
      let attached = K.attached_refs k ~addr in
      List.fold_left (fun acc a -> go a acc) (addr :: acc) attached
    end
  in
  List.rev (List.fold_left (fun acc root -> go root acc) [] roots)

let moving_closure k obj_addr = closure_of_roots k [ obj_addr ]

let field_types k ~class_index =
  let lc = K.loaded_class k class_index in
  lc.K.lc_class.Emc.Compile.cc_template.Emc.Template.ct_fields

(* capture one object's data area and monitor state *)
let capture_object k addr : Marshal.move_object =
  let class_index = K.class_of_object k addr in
  let fields = field_types k ~class_index in
  let mem = K.mem k in
  let values =
    Array.mapi
      (fun i (_, ty) -> K.value_of_raw k ty (Mem.load32 mem (addr + L.field_offset i)))
      fields
  in
  let lc = K.loaded_class k class_index in
  let nconds =
    Array.length lc.K.lc_class.Emc.Compile.cc_template.Emc.Template.ct_conditions
  in
  {
    Marshal.mo_oid = K.oid_at k addr;
    mo_class = class_index;
    mo_fields = values;
    mo_locked = K.monitor_locked k ~obj_addr:addr;
    mo_waiters =
      List.map (fun (s : T.segment) -> s.T.seg_id) (K.monitor_waiters k ~obj_addr:addr);
    mo_cond_waiters =
      List.init nconds (fun cond ->
          List.map
            (fun (s : T.segment) -> s.T.seg_id)
            (K.condition_waiters k ~obj_addr:addr ~cond));
  }

(* group a top-first frame list into maximal runs of equal moving-flag *)
let group_runs flags frames =
  let rec go acc cur cur_flag = function
    | [] -> List.rev ((cur_flag, List.rev cur) :: acc)
    | (flag, frame) :: rest ->
      if flag = cur_flag then go acc (frame :: cur) cur_flag rest
      else go ((cur_flag, List.rev cur) :: acc) [ frame ] flag rest
  in
  match List.combine flags frames with
  | [] -> []
  | (flag, frame) :: rest -> go [] [ frame ] flag rest

(* split one segment's stack by the moving predicate; returns the
   machine-independent segments to ship *)
let split_segment k ~dest ~moving_oid (seg : T.segment) : Mi_frame.mi_segment list =
  let self_node = K.node_id k in
  match seg.T.seg_spawn with
  | Some spawn ->
    if not (moving_oid spawn.T.si_target) then []
    else begin
      K.unregister_segment k seg;
      K.set_seg_forward k ~seg_id:seg.T.seg_id ~node:dest;
      [
        {
          Mi_frame.ms_seg_id = seg.T.seg_id;
          ms_thread = seg.T.seg_thread;
          ms_status = Translate.status_to_mi k seg;
          ms_frames = [];
          ms_link = seg.T.seg_link;
          ms_result_type = seg.T.seg_result_type;
          ms_spawn = Some spawn;
        };
      ]
    end
  | None ->
    let frames = Translate.walk_frames k seg in
    let flags =
      List.map (fun (f : Translate.frame_rec) -> moving_oid (K.oid_at k f.Translate.fw_self)) frames
    in
    if not (List.mem true flags) then []
    else begin
      let runs = Array.of_list (group_runs flags frames) in
      let n_runs = Array.length runs in
      (* segment ids: the top run inherits the original id (incoming links
         reply to the top frame); lower runs get fresh ids *)
      let ids = Array.init n_runs (fun j -> if j = 0 then seg.T.seg_id else K.fresh_seg_id k) in
      let run_result_type j =
        let _, fs = runs.(j) in
        match List.rev fs with
        | [] -> assert false
        | (bottom : Translate.frame_rec) :: _ ->
          Translate.result_type_of k ~class_index:bottom.Translate.fw_class
            ~method_index:bottom.Translate.fw_method
      in
      let run_link j =
        if j = n_runs - 1 then seg.T.seg_link
        else
          let below_moves, _ = runs.(j + 1) in
          Some
            {
              T.ln_node = (if below_moves then dest else self_node);
              ln_seg = ids.(j + 1);
            }
      in
      let run_status j =
        if j = 0 then Translate.status_to_mi k seg
        else
          let _, fs = runs.(j) in
          match fs with
          | [] -> assert false
          | (top : Translate.frame_rec) :: _ ->
            Mi_frame.Ms_awaiting_reply top.Translate.fw_entry.Emc.Busstop.be_id
      in
      let shipped = ref [] in
      Array.iteri
        (fun j (moves, fs) ->
          if moves then begin
            let mi =
              {
                Mi_frame.ms_seg_id = ids.(j);
                ms_thread = seg.T.seg_thread;
                ms_status = run_status j;
                ms_frames = List.map (Translate.capture_frame k) fs;
                ms_link = run_link j;
                ms_result_type = run_result_type j;
                ms_spawn = None;
              }
            in
            shipped := mi :: !shipped;
            K.set_seg_forward k ~seg_id:ids.(j) ~node:dest
          end)
        runs;
      (* re-form the staying runs in place *)
      K.unregister_segment k seg;
      Array.iteri
        (fun j (moves, fs) ->
          if not moves then begin
            let top : Translate.frame_rec =
              match fs with
              | t :: _ -> t
              | [] -> assert false
            in
            if j = 0 then begin
              (* the original top run keeps its context and status *)
              if n_runs > 1 then begin
                Translate.patch_segment_bottom k seg fs;
                seg.T.seg_link <- run_link 0;
                seg.T.seg_result_type <- run_result_type 0
              end;
              K.register_segment k seg
            end
            else begin
              let below_resume =
                match fs with
                | _ :: (_ : Translate.frame_rec) :: _ -> top.Translate.fw_ret_out
                | _ -> 0
              in
              if j < n_runs - 1 then Translate.patch_segment_bottom k seg fs;
              let ctx = Translate.make_ctx_for_top k ~top ~below_resume in
              let stay =
                {
                  T.seg_id = ids.(j);
                  seg_thread = seg.T.seg_thread;
                  seg_status =
                    T.Awaiting_reply { stop_id = top.Translate.fw_entry.Emc.Busstop.be_id };
                  seg_ctx = ctx;
                  seg_stack_top = seg.T.seg_stack_top;
                  seg_stack_bottom = seg.T.seg_stack_bottom;
                  seg_link = run_link j;
                  seg_result_type = run_result_type j;
                  seg_spawn = None;
                  seg_live = false;
                }
              in
              ctx.Isa.Machine.stack_limit <- stay.T.seg_stack_bottom;
              K.register_segment k stay
            end
          end)
        runs;
      List.rev !shipped
    end

(* the move protocol body, shared by the single-root and group paths:
   capture, split, then evict behind forwarding proxies *)
let perform_move_of_addrs k ~addrs ~dest : Marshal.move_payload =
  let oids = Ert.Oid.Tbl.create (List.length addrs) in
  List.iter (fun addr -> Ert.Oid.Tbl.replace oids (K.oid_at k addr) ()) addrs;
  let moving_oid oid = Ert.Oid.Tbl.mem oids oid in
  (* capture objects before any state changes *)
  let objects = List.map (capture_object k) addrs in
  (* split every local segment whose stack touches a moving object *)
  let segments =
    List.concat_map (fun seg -> split_segment k ~dest ~moving_oid seg) (K.segments k)
  in
  (* leave forwarding proxies *)
  List.iter (fun addr -> K.evict_object k ~addr ~forward_to:dest) addrs;
  {
    Marshal.mp_src = K.node_id k;
    mp_opt_level = Emc.Opt.to_int (K.opt_level k);
    mp_objects = objects;
    mp_segments = segments;
  }

let perform_move k ~obj_addr ~dest : Marshal.move_payload =
  perform_move_of_addrs k ~addrs:(moving_closure k obj_addr) ~dest

(* Group migration: ship several co-located root objects — their unioned
   closures, every thread segment executing inside any of them, and all
   the monitor state — as ONE payload, one wire transfer, one protocol
   charge.  Non-resident roots are skipped (they already left). *)
let perform_group_move k ~roots ~dest : Marshal.move_payload =
  let addrs = closure_of_roots k (List.filter (K.is_resident k) roots) in
  perform_move_of_addrs k ~addrs ~dest

let park_mover (mover : T.segment) =
  mover.T.seg_status <- T.Parked (Isa.Suspend.Complete None)

let park_mover_for_test = park_mover

let initiate ~k ~mover ~obj_addr ~dest =
  park_mover mover;
  if not (K.is_resident k obj_addr) then begin
    (* a move of a non-resident object: forward the request to its host as
       a hint; the mover continues immediately *)
    K.enqueue_ready k mover;
    let hint = K.proxy_hint k obj_addr in
    if hint = K.node_id k then []
    else
      [
        {
          snd_dest = hint;
          snd_msg = Marshal.M_move_req { obj = K.oid_at k obj_addr; dest; forwards = 0 };
        };
      ]
  end
  else if dest = K.node_id k then begin
    (* already here: complete trivially *)
    K.enqueue_ready k mover;
    []
  end
  else begin
    (* enqueue first: if the mover's own frames move, the queue entry is
       invalidated by unregistration and the destination enqueues it *)
    K.enqueue_ready k mover;
    let payload = perform_move k ~obj_addr ~dest in
    [ { snd_dest = dest; snd_msg = Marshal.M_move payload } ]
  end

(* Forced eviction: the kernel's trap has already captured [seg] at a bus
   stop; ship the object it is executing inside (and, through the normal
   move protocol, every segment touching that object — including monitor
   entry and condition queues, preserving order).  There is no mover
   thread: the eviction was imposed from outside, so nothing resumes
   locally. *)
let initiate_evict ~k ~(seg : T.segment) ~dest =
  if dest = K.node_id k then []
  else begin
    let obj_addr =
      match seg.T.seg_spawn with
      | Some spawn -> K.find_object k spawn.T.si_target
      | None -> (
        match Translate.walk_frames k seg with
        | top :: _ -> Some top.Translate.fw_self
        | [] -> None)
    in
    match obj_addr with
    | None -> [] (* nothing resident to ship: the target already left *)
    | Some obj_addr ->
      let payload = perform_move k ~obj_addr ~dest in
      [ { snd_dest = dest; snd_msg = Marshal.M_move payload } ]
  end

let handle_move_req ~k ~obj ~dest ~forwards =
  match K.find_object k obj with
  | Some addr when dest <> K.node_id k ->
    let payload = perform_move k ~obj_addr:addr ~dest in
    [ { snd_dest = dest; snd_msg = Marshal.M_move payload } ]
  | Some _ -> []
  | None ->
    if forwards >= 8 then [] (* stale request chasing a fast-moving object: drop *)
    else (
      match K.proxy_of k obj with
      | Some addr ->
        let hint = K.proxy_hint k addr in
        if hint = K.node_id k then []
        else
          [ { snd_dest = hint; snd_msg = Marshal.M_move_req { obj; dest; forwards = forwards + 1 } } ]
      | None -> [])

type apply_stats = {
  ap_objects : int;
  ap_segments : int;
  ap_frames : int;
  ap_src_opt : int;  (* source instance's optimization level (Opt.to_int) *)
  ap_bridged : int;  (* arriving threads landed via a bridge fragment *)
}

let apply_move k (payload : Marshal.move_payload) =
  let mem = K.mem k in
  (* pass 1: descriptors, so references among arriving objects resolve *)
  let installed =
    List.map
      (fun (o : Marshal.move_object) ->
        let addr = K.install_object k ~oid:o.Marshal.mo_oid ~class_index:o.Marshal.mo_class in
        (o, addr))
      payload.Marshal.mp_objects
  in
  (* pass 2: field values *)
  List.iter
    (fun ((o : Marshal.move_object), addr) ->
      Array.iteri
        (fun i v -> Mem.store32 mem (addr + L.field_offset i) (K.raw_of_value k v))
        o.Marshal.mo_fields)
    installed;
  (* pass 3: thread segments (youngest-first translation + relocation).
     Bridge-cache lookups during rebuild = threads whose parked stop has
     no exact correspondent in this node's instance *)
  let bridge = K.bridge k in
  let lookups_before = Ert.Bridge.hits bridge + Ert.Bridge.misses bridge in
  List.iter
    (fun mi -> ignore (Translate.rebuild_segment k mi))
    payload.Marshal.mp_segments;
  let bridged =
    Ert.Bridge.hits bridge + Ert.Bridge.misses bridge - lookups_before
  in
  (* pass 4: monitor state, preserving queue order.  Rebuilt waiters carry
     their (possibly timed) status from pass 3; re-enqueueing must thread
     the deadline through or a timed wait would silently become eternal
     after migration. *)
  let seg_deadline (seg : T.segment) =
    match seg.T.seg_status with
    | T.Blocked_monitor { deadline; _ } -> deadline
    | _ -> None
  in
  List.iter
    (fun ((o : Marshal.move_object), addr) ->
      K.set_monitor_locked k ~obj_addr:addr o.Marshal.mo_locked;
      List.iter
        (fun sid ->
          match K.find_segment k sid with
          | Some seg -> K.monitor_enqueue_blocked k ~obj_addr:addr seg
          | None -> fail "move: monitor waiter segment %d did not arrive" sid)
        o.Marshal.mo_waiters;
      List.iteri
        (fun cond sids ->
          List.iter
            (fun sid ->
              match K.find_segment k sid with
              | Some seg ->
                K.monitor_enqueue_blocked k ~obj_addr:addr ~cond
                  ?deadline:(seg_deadline seg) seg
              | None -> fail "move: condition waiter segment %d did not arrive" sid)
            sids)
        o.Marshal.mo_cond_waiters)
    installed;
  {
    ap_objects = List.length payload.Marshal.mp_objects;
    ap_segments = List.length payload.Marshal.mp_segments;
    ap_frames =
      List.fold_left
        (fun acc s -> acc + Mi_frame.frame_count s)
        0 payload.Marshal.mp_segments;
    ap_src_opt = payload.Marshal.mp_opt_level;
    ap_bridged = bridged;
  }
