module W = Enet.Wire.Writer
module R = Enet.Wire.Reader

type mi_frame = {
  mf_class : int;
  mf_code_oid : int32;
  mf_method : int;
  mf_stop : int;
  mf_slots : (int * Ert.Value.t) array;
  mf_self : Ert.Oid.t;
}

type mi_status =
  | Ms_parked of Ert.Value.t Isa.Suspend.t
  | Ms_awaiting_reply of int
  | Ms_blocked_monitor of {
      mon : Ert.Oid.t;
      in_queue : bool;
      cond : int;
      deadline : float option;
    }

type mi_segment = {
  ms_seg_id : int;
  ms_thread : int;
  ms_status : mi_status;
  ms_frames : mi_frame list;
  ms_link : Ert.Thread.link option;
  ms_result_type : Emc.Ast.typ option;
  ms_spawn : Ert.Thread.spawn_info option;
}

(* types travel in the shared Value codec *)
let write_typ = Ert.Value.write_typ
let read_typ = Ert.Value.read_typ
let write_typ_raw = Ert.Value.write_typ_raw
let read_typ_raw = Ert.Value.read_typ_raw

let write_opt w f = function
  | None -> W.u8 w 0
  | Some x ->
    W.u8 w 1;
    f w x

let read_opt r f =
  match R.u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> failwith (Printf.sprintf "Mi_frame.read_opt: corrupt tag %d" n)

let write_frame_interp w f =
  W.u16 w f.mf_class;
  W.u32 w f.mf_code_oid;
  W.u16 w f.mf_method;
  W.u16 w f.mf_stop;
  W.u32 w f.mf_self;
  W.u16 w (Array.length f.mf_slots);
  Array.iter
    (fun (slot, v) ->
      W.u16 w slot;
      Ert.Value.write w v)
    f.mf_slots

(* Blit tier: the whole frame goes out through the raw primitives —
   byte-identical to [write_frame_interp] — and is accounted as one
   conversion call over its byte length, the §4 fast path for
   layout-matched pairs.  No conversion plan, no per-datum dispatch. *)
let write_frame_blit w f =
  let p0 = W.length w in
  W.raw_u16 w f.mf_class;
  W.raw_u32 w f.mf_code_oid;
  W.raw_u16 w f.mf_method;
  W.raw_u16 w f.mf_stop;
  W.raw_u32 w f.mf_self;
  W.raw_u16 w (Array.length f.mf_slots);
  Array.iter
    (fun (slot, v) ->
      W.raw_u16 w slot;
      Ert.Value.write_raw w v)
    f.mf_slots;
  W.add_charge w ~calls:1 ~bytes:(W.length w - p0)

let read_frame_blit r =
  let p0 = R.pos r in
  let mf_class = R.raw_u16 r in
  let mf_code_oid = R.raw_u32 r in
  let mf_method = R.raw_u16 r in
  let mf_stop = R.raw_u16 r in
  let mf_self = R.raw_u32 r in
  let n = R.raw_u16 r in
  let mf_slots = Array.make n (0, Ert.Value.Vnil) in
  for i = 0 to n - 1 do
    let slot = R.raw_u16 r in
    let v = Ert.Value.read_raw r in
    mf_slots.(i) <- (slot, v)
  done;
  R.add_charge r ~calls:1 ~bytes:(R.pos r - p0);
  { mf_class; mf_code_oid; mf_method; mf_stop; mf_slots; mf_self }

let write_frame ?plans ?(blit = false) w f =
  if blit then write_frame_blit w f
  else begin
    let fused =
      match plans with
      | None -> false
      | Some use -> (
        match Conv_plan.frame_plan_for use ~class_index:f.mf_class ~stop:f.mf_stop with
        | None -> false
        | Some fp ->
          Conv_plan.write_frame fp w ~cls:f.mf_class ~code_oid:f.mf_code_oid
            ~meth:f.mf_method ~stop:f.mf_stop ~self:f.mf_self ~slots:f.mf_slots)
    in
    if not fused then write_frame_interp w f
  end

let read_frame_interp ?plans r =
  (* the plan is looked up from the class and stop the header announces;
     with plans in play the 14 header bytes are read as one block,
     charged exactly like the five per-datum Bulk reads *)
  let mf_class, mf_code_oid, mf_method, mf_stop, mf_self =
    match plans with
    | Some _ ->
      let off = R.block r 14 in
      R.add_charge r ~calls:5 ~bytes:14;
      ( R.get16_at r off,
        R.get32_at r (off + 2),
        R.get16_at r (off + 6),
        R.get16_at r (off + 8),
        R.get32_at r (off + 10) )
    | None ->
      let c = R.u16 r in
      let oid = R.u32 r in
      let m = R.u16 r in
      let st = R.u16 r in
      let self = R.u32 r in
      (c, oid, m, st, self)
  in
  let fused =
    match plans with
    | None -> None
    | Some use -> (
      match Conv_plan.frame_plan_for use ~class_index:mf_class ~stop:mf_stop with
      | None -> None
      | Some fp -> Conv_plan.read_frame_slots fp r)
  in
  let mf_slots =
    match fused with
    | Some slots -> slots
    | None ->
      let n = R.u16 r in
      let slots = Array.make n (0, Ert.Value.Vnil) in
      for i = 0 to n - 1 do
        let slot = R.u16 r in
        let v = Ert.Value.read r in
        slots.(i) <- (slot, v)
      done;
      slots
  in
  { mf_class; mf_code_oid; mf_method; mf_stop; mf_slots; mf_self }

let read_frame ?plans ?(blit = false) r =
  if blit then read_frame_blit r else read_frame_interp ?plans r

(* the four wire-encodable suspensions keep the v2 resume tags 1-4; the
   CPU-only constructors never travel (capture happens at bus stops) *)
let write_suspension w (s : Ert.Value.t Isa.Suspend.t) =
  match s with
  | Isa.Suspend.Run -> W.u8 w 1
  | Isa.Suspend.Deliver v ->
    W.u8 w 2;
    Ert.Value.write w v
  | Isa.Suspend.Complete v ->
    W.u8 w 3;
    write_opt w Ert.Value.write v
  | Isa.Suspend.Complete_dequeue sid ->
    W.u8 w 4;
    write_opt w (fun w s -> W.i32 w (Int32.of_int s)) sid
  | Isa.Suspend.Poll | Isa.Suspend.Syscall _ | Isa.Suspend.Bottom_return
  | Isa.Suspend.Halt | Isa.Suspend.Trap _ | Isa.Suspend.Fuel ->
    failwith "Mi_frame.write_suspension: CPU-only suspension is not wire-encodable"

let read_suspension r : Ert.Value.t Isa.Suspend.t =
  match R.u8 r with
  | 1 -> Isa.Suspend.Run
  | 2 -> Isa.Suspend.Deliver (Ert.Value.read r)
  | 3 -> Isa.Suspend.Complete (read_opt r Ert.Value.read)
  | 4 -> Isa.Suspend.Complete_dequeue (read_opt r (fun r -> Int32.to_int (R.i32 r)))
  | n -> failwith (Printf.sprintf "Mi_frame.read_suspension: corrupt tag %d" n)

let write_status w = function
  | Ms_parked s ->
    W.u8 w 1;
    write_suspension w s
  | Ms_awaiting_reply stop ->
    W.u8 w 2;
    W.u16 w stop
  | Ms_blocked_monitor { mon; in_queue; cond; deadline = None } ->
    (* tag 3 is the v2 no-deadline encoding, kept byte-identical *)
    W.u8 w 3;
    W.u32 w mon;
    W.bool w in_queue;
    W.i32 w (Int32.of_int cond)
  | Ms_blocked_monitor { mon; in_queue; cond; deadline = Some d } ->
    W.u8 w 4;
    W.u32 w mon;
    W.bool w in_queue;
    W.i32 w (Int32.of_int cond);
    W.f64 w d

let read_status r =
  match R.u8 r with
  | 1 -> Ms_parked (read_suspension r)
  | 2 -> Ms_awaiting_reply (R.u16 r)
  | 3 ->
    let mon = R.u32 r in
    let in_queue = R.bool r in
    let cond = Int32.to_int (R.i32 r) in
    Ms_blocked_monitor { mon; in_queue; cond; deadline = None }
  | 4 ->
    let mon = R.u32 r in
    let in_queue = R.bool r in
    let cond = Int32.to_int (R.i32 r) in
    let deadline = R.f64 r in
    Ms_blocked_monitor { mon; in_queue; cond; deadline = Some deadline }
  | n -> failwith (Printf.sprintf "Mi_frame.read_status: corrupt tag %d" n)

let write_link w (l : Ert.Thread.link) =
  W.u16 w l.Ert.Thread.ln_node;
  W.i32 w (Int32.of_int l.Ert.Thread.ln_seg)

let read_link r =
  let ln_node = R.u16 r in
  let ln_seg = Int32.to_int (R.i32 r) in
  { Ert.Thread.ln_node; ln_seg }

let write_spawn w (s : Ert.Thread.spawn_info) =
  W.u32 w s.Ert.Thread.si_target;
  W.u16 w s.Ert.Thread.si_class;
  W.u16 w s.Ert.Thread.si_method;
  W.u16 w (List.length s.Ert.Thread.si_args);
  List.iter (Ert.Value.write w) s.Ert.Thread.si_args

let read_spawn r =
  let si_target = R.u32 r in
  let si_class = R.u16 r in
  let si_method = R.u16 r in
  let n = R.u16 r in
  let si_args = List.init n (fun _ -> Ert.Value.read r) in
  { Ert.Thread.si_target; si_class; si_method; si_args }

(* raw (blit-tier) twins of the scaffold writers above: identical bytes,
   no per-datum charges *)
let write_opt_raw w f = function
  | None -> W.raw_u8 w 0
  | Some x ->
    W.raw_u8 w 1;
    f w x

let read_opt_raw r f =
  match R.raw_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> failwith (Printf.sprintf "Mi_frame.read_opt_raw: corrupt tag %d" n)

let write_suspension_raw w (s : Ert.Value.t Isa.Suspend.t) =
  match s with
  | Isa.Suspend.Run -> W.raw_u8 w 1
  | Isa.Suspend.Deliver v ->
    W.raw_u8 w 2;
    Ert.Value.write_raw w v
  | Isa.Suspend.Complete v ->
    W.raw_u8 w 3;
    write_opt_raw w Ert.Value.write_raw v
  | Isa.Suspend.Complete_dequeue sid ->
    W.raw_u8 w 4;
    write_opt_raw w (fun w s -> W.raw_u32 w (Int32.of_int s)) sid
  | Isa.Suspend.Poll | Isa.Suspend.Syscall _ | Isa.Suspend.Bottom_return
  | Isa.Suspend.Halt | Isa.Suspend.Trap _ | Isa.Suspend.Fuel ->
    failwith "Mi_frame.write_suspension: CPU-only suspension is not wire-encodable"

let read_suspension_raw r : Ert.Value.t Isa.Suspend.t =
  match R.raw_u8 r with
  | 1 -> Isa.Suspend.Run
  | 2 -> Isa.Suspend.Deliver (Ert.Value.read_raw r)
  | 3 -> Isa.Suspend.Complete (read_opt_raw r Ert.Value.read_raw)
  | 4 -> Isa.Suspend.Complete_dequeue (read_opt_raw r (fun r -> Int32.to_int (R.raw_u32 r)))
  | n -> failwith (Printf.sprintf "Mi_frame.read_suspension: corrupt tag %d" n)

let write_status_raw w = function
  | Ms_parked s ->
    W.raw_u8 w 1;
    write_suspension_raw w s
  | Ms_awaiting_reply stop ->
    W.raw_u8 w 2;
    W.raw_u16 w stop
  | Ms_blocked_monitor { mon; in_queue; cond; deadline = None } ->
    W.raw_u8 w 3;
    W.raw_u32 w mon;
    W.raw_u8 w (if in_queue then 1 else 0);
    W.raw_u32 w (Int32.of_int cond)
  | Ms_blocked_monitor { mon; in_queue; cond; deadline = Some d } ->
    W.raw_u8 w 4;
    W.raw_u32 w mon;
    W.raw_u8 w (if in_queue then 1 else 0);
    W.raw_u32 w (Int32.of_int cond);
    W.raw_f64 w d

let read_status_raw r =
  match R.raw_u8 r with
  | 1 -> Ms_parked (read_suspension_raw r)
  | 2 -> Ms_awaiting_reply (R.raw_u16 r)
  | 3 ->
    let mon = R.raw_u32 r in
    let in_queue = R.raw_u8 r <> 0 in
    let cond = Int32.to_int (R.raw_u32 r) in
    Ms_blocked_monitor { mon; in_queue; cond; deadline = None }
  | 4 ->
    let mon = R.raw_u32 r in
    let in_queue = R.raw_u8 r <> 0 in
    let cond = Int32.to_int (R.raw_u32 r) in
    let deadline = R.raw_f64 r in
    Ms_blocked_monitor { mon; in_queue; cond; deadline = Some deadline }
  | n -> failwith (Printf.sprintf "Mi_frame.read_status: corrupt tag %d" n)

let write_link_raw w (l : Ert.Thread.link) =
  W.raw_u16 w l.Ert.Thread.ln_node;
  W.raw_u32 w (Int32.of_int l.Ert.Thread.ln_seg)

let read_link_raw r =
  let ln_node = R.raw_u16 r in
  let ln_seg = Int32.to_int (R.raw_u32 r) in
  { Ert.Thread.ln_node; ln_seg }

let write_spawn_raw w (s : Ert.Thread.spawn_info) =
  W.raw_u32 w s.Ert.Thread.si_target;
  W.raw_u16 w s.Ert.Thread.si_class;
  W.raw_u16 w s.Ert.Thread.si_method;
  W.raw_u16 w (List.length s.Ert.Thread.si_args);
  List.iter (Ert.Value.write_raw w) s.Ert.Thread.si_args

let read_spawn_raw r =
  let si_target = R.raw_u32 r in
  let si_class = R.raw_u16 r in
  let si_method = R.raw_u16 r in
  let n = R.raw_u16 r in
  let si_args = List.init n (fun _ -> Ert.Value.read_raw r) in
  { Ert.Thread.si_target; si_class; si_method; si_args }

(* Blit tier: the scaffold before the frames is one conversion call,
   each frame is one, and the trailing options are one — versus one
   call per datum on the interpretive/plan path. *)
let write_segment_blit w s =
  let p0 = W.length w in
  W.raw_u32 w (Int32.of_int s.ms_seg_id);
  W.raw_u32 w (Int32.of_int s.ms_thread);
  write_status_raw w s.ms_status;
  W.raw_u16 w (List.length s.ms_frames);
  W.add_charge w ~calls:1 ~bytes:(W.length w - p0);
  List.iter (write_frame_blit w) s.ms_frames;
  let p1 = W.length w in
  write_opt_raw w write_link_raw s.ms_link;
  write_opt_raw w write_typ_raw s.ms_result_type;
  write_opt_raw w write_spawn_raw s.ms_spawn;
  W.add_charge w ~calls:1 ~bytes:(W.length w - p1)

let read_segment_blit r =
  let p0 = R.pos r in
  let ms_seg_id = Int32.to_int (R.raw_u32 r) in
  let ms_thread = Int32.to_int (R.raw_u32 r) in
  let ms_status = read_status_raw r in
  let n = R.raw_u16 r in
  R.add_charge r ~calls:1 ~bytes:(R.pos r - p0);
  let ms_frames = List.init n (fun _ -> read_frame_blit r) in
  let p1 = R.pos r in
  let ms_link = read_opt_raw r read_link_raw in
  let ms_result_type = read_opt_raw r read_typ_raw in
  let ms_spawn = read_opt_raw r read_spawn_raw in
  R.add_charge r ~calls:1 ~bytes:(R.pos r - p1);
  { ms_seg_id; ms_thread; ms_status; ms_frames; ms_link; ms_result_type; ms_spawn }

let write_segment_interp ?plans w s =
  (match plans with
  | Some _ ->
    (* Fused segment head: same bytes and the same Bulk-equivalent
       charge (2 x i32) as the interpretive pair below. *)
    W.raw_u32 w (Int32.of_int s.ms_seg_id);
    W.raw_u32 w (Int32.of_int s.ms_thread);
    W.add_charge w ~calls:2 ~bytes:8
  | None ->
    W.i32 w (Int32.of_int s.ms_seg_id);
    W.i32 w (Int32.of_int s.ms_thread));
  write_status w s.ms_status;
  W.u16 w (List.length s.ms_frames);
  List.iter (write_frame ?plans w) s.ms_frames;
  write_opt w write_link s.ms_link;
  write_opt w write_typ s.ms_result_type;
  write_opt w write_spawn s.ms_spawn

let write_segment ?plans ?(blit = false) w s =
  if blit then write_segment_blit w s else write_segment_interp ?plans w s

let read_segment_interp ?plans r =
  let ms_seg_id, ms_thread =
    match plans with
    | Some _ ->
      let off = R.block r 8 in
      R.add_charge r ~calls:2 ~bytes:8;
      (Int32.to_int (R.get32_at r off), Int32.to_int (R.get32_at r (off + 4)))
    | None ->
      let seg_id = Int32.to_int (R.i32 r) in
      let thread = Int32.to_int (R.i32 r) in
      (seg_id, thread)
  in
  let ms_status = read_status r in
  let n = R.u16 r in
  let ms_frames = List.init n (fun _ -> read_frame ?plans r) in
  let ms_link = read_opt r read_link in
  let ms_result_type = read_opt r read_typ in
  let ms_spawn = read_opt r read_spawn in
  { ms_seg_id; ms_thread; ms_status; ms_frames; ms_link; ms_result_type; ms_spawn }

let read_segment ?plans ?(blit = false) r =
  if blit then read_segment_blit r else read_segment_interp ?plans r

let frame_count s = List.length s.ms_frames

let pp_segment ppf s =
  Format.fprintf ppf "segment %d (thread %d), %d frame(s)%s@." s.ms_seg_id s.ms_thread
    (List.length s.ms_frames)
    (match s.ms_spawn with
    | Some _ -> " [unstarted spawn]"
    | None -> "");
  List.iter
    (fun f ->
      Format.fprintf ppf "  frame: class %d method %d at stop %d, self %s, %d slot(s)@."
        f.mf_class f.mf_method f.mf_stop (Ert.Oid.to_string f.mf_self)
        (Array.length f.mf_slots))
    s.ms_frames
