module A = Isa.Arch
module M = Isa.Machine
module Mem = Isa.Memory
module K = Ert.Kernel
module T = Ert.Thread

type frame_rec = Ert.Frame_walk.frame_rec = {
  fw_class : int;
  fw_method : int;
  fw_entry : Emc.Busstop.entry;
  fw_fp : int;
  fw_ret_out : int;
  fw_self : int;
}

let walk_frames = Ert.Frame_walk.walk
let fail fmt = Format.kasprintf (fun m -> raise (K.Runtime_error m)) fmt

(* per-family geometry of the cells a callee's presence adds between the
   caller's stack pointer and the callee's frame pointer *)
let linkage_bytes = function
  | A.Vax -> 12 (* return address, save mask, saved FP *)
  | A.M68k -> 8 (* return address, saved FP *)
  | A.Sparc -> 0 (* the callee's FP is the caller's SP *)

(* pad above the oldest frame's FP for the cells its epilogue pops *)
let top_pad = function
  | A.Vax -> 16
  | A.M68k -> 12
  | A.Sparc -> 8

let sparc_i6_off = 32 + (4 * 6)
let sparc_i7_off = 32 + (4 * 7)

let op_template k ~class_index ~method_index =
  let lc = K.loaded_class k class_index in
  lc.K.lc_class.Emc.Compile.cc_template.Emc.Template.ct_ops.(method_index)

let capture_frame k fr =
  let lc = K.loaded_class k fr.fw_class in
  let ct = lc.K.lc_class.Emc.Compile.cc_template in
  let stop = Emc.Template.stop_by_id ct fr.fw_entry.Emc.Busstop.be_id in
  let fi = K.frame_info k ~class_index:fr.fw_class ~method_index:fr.fw_method in
  let mem = K.mem k in
  let slots =
    Array.map
      (fun (es : Emc.Template.entity_slot) ->
        let off = fi.Emc.Busstop.fr_slot_offsets.(es.Emc.Template.es_slot) in
        let raw = Mem.load32 mem (fr.fw_fp + off) in
        (es.Emc.Template.es_slot, K.value_of_raw k es.Emc.Template.es_type raw))
      (Array.of_list stop.Emc.Template.st_live)
  in
  {
    Mi_frame.mf_class = fr.fw_class;
    mf_code_oid = lc.K.lc_code.Isa.Code.code_oid;
    mf_method = fr.fw_method;
    mf_stop = fr.fw_entry.Emc.Busstop.be_id;
    mf_slots = slots;
    mf_self = K.oid_at k fr.fw_self;
  }

(* the suspension is already machine-independent: it passes through
   unconverted (the old resume_to_mi/resume_of_mi pair is gone) *)
let status_to_mi k (seg : T.segment) =
  match seg.T.seg_status with
  | T.Parked s ->
    if not (Isa.Suspend.wire_encodable s) then
      fail "cannot capture segment %d: CPU-only suspension" seg.T.seg_id;
    Mi_frame.Ms_parked s
  | T.Awaiting_reply { stop_id } -> Mi_frame.Ms_awaiting_reply stop_id
  | T.Blocked_monitor { mon_addr; qnode; cond; deadline } ->
    Mi_frame.Ms_blocked_monitor
      { mon = K.oid_at k mon_addr; in_queue = qnode <> 0; cond; deadline }
  | T.Running ->
    fail "cannot capture running segment %d (park it at its stop first)" seg.T.seg_id
  | T.Dead -> fail "cannot capture dead segment %d" seg.T.seg_id

let result_type_of k ~class_index ~method_index =
  let tmpl = op_template k ~class_index ~method_index in
  Option.map
    (fun v ->
      let _, ty, _ = tmpl.Emc.Template.ot_vars.(v) in
      ty)
    tmpl.Emc.Template.ot_result_var

let status_of_mi k = function
  | Mi_frame.Ms_parked s -> T.Parked s
  | Mi_frame.Ms_awaiting_reply stop_id -> T.Awaiting_reply { stop_id }
  | Mi_frame.Ms_blocked_monitor { mon; in_queue; cond; deadline } ->
    let mon_addr = K.ensure_ref k mon in
    ignore in_queue;
    (* queue membership is restored by the caller, in marshalled order *)
    T.Blocked_monitor { mon_addr; qnode = 0; cond; deadline }

(* geometry of one rebuilt frame on this node *)
type build_frame = {
  bf : Mi_frame.mi_frame;
  bf_fi : Emc.Busstop.frame_info;
  bf_entry : Emc.Busstop.entry;
  bf_resume_abs : int;  (** absolute PC at which this frame resumes *)
  bf_depth : int;  (** SP depth below FP while suspended here *)
  mutable bf_fp : int;  (** final frame pointer *)
}

let rebuild_segment k (mi : Mi_frame.mi_segment) : T.segment =
  match mi.Mi_frame.ms_spawn with
  | Some spawn ->
    K.spawn_exact k ~spawn ~link:mi.Mi_frame.ms_link ~thread:mi.Mi_frame.ms_thread
      ~seg_id:mi.Mi_frame.ms_seg_id
      ~status:(status_of_mi k mi.Mi_frame.ms_status)
  | None ->
    let arch = K.arch k in
    let family = arch.A.family in
    let mem = K.mem k in
    let frames = mi.Mi_frame.ms_frames in
    if frames = [] then fail "rebuild: segment %d has no frames" mi.Mi_frame.ms_seg_id;
    let builds =
      List.map
        (fun (f : Mi_frame.mi_frame) ->
          let class_index = f.Mi_frame.mf_class in
          let entry = K.stop_by_id k ~class_index ~stop_id:f.Mi_frame.mf_stop in
          let fi = K.frame_info k ~class_index ~method_index:f.Mi_frame.mf_method in
          {
            bf = f;
            bf_fi = fi;
            bf_entry = entry;
            bf_resume_abs = K.resume_abs k ~class_index entry;
            bf_depth = entry.Emc.Busstop.be_sp_depth;
            bf_fp = 0;
          })
        frames
    in
    let n = List.length builds in
    let barr = Array.of_list builds in
    let stack_top = K.alloc_stack k in
    let stack_bottom = stack_top - K.stack_bytes + 256 in
    (* phase 1: translate youngest first into provisional positions at the
       low end of the region (final positions depend on the sizes of the
       records still to be translated — the situation of section 3.5) *)
    let prov_fp = Array.make n 0 in
    let cursor = ref (stack_bottom + 64) in
    Array.iteri
      (fun i b ->
        prov_fp.(i) <- !cursor + b.bf_depth;
        cursor := !cursor + b.bf_depth + linkage_bytes family + 16)
      barr;
    let write_slots fp (b : build_frame) =
      (* the self slot is not always in the stop's live set (a spin loop may
         never read self again), but the frame walk relies on it to identify
         the activation's object on a later capture — restore it first, then
         let a live capture of the same slot overwrite with the same value *)
      let tmpl =
        op_template k ~class_index:b.bf.Mi_frame.mf_class
          ~method_index:b.bf.Mi_frame.mf_method
      in
      let self_slot = Emc.Template.var_slot tmpl 0 in
      let self_off = b.bf_fi.Emc.Busstop.fr_slot_offsets.(self_slot) in
      let self_addr = K.ensure_ref k b.bf.Mi_frame.mf_self in
      Mem.store32 mem (fp + self_off) (Int32.of_int self_addr);
      Array.iter
        (fun (slot, v) ->
          let off = b.bf_fi.Emc.Busstop.fr_slot_offsets.(slot) in
          Mem.store32 mem (fp + off) (K.raw_of_value k v))
        b.bf.Mi_frame.mf_slots
    in
    Array.iteri (fun i b -> write_slots prov_fp.(i) b) barr;
    (* phase 2: compute final placement (oldest frame near the stack top)
       and relocate each record *)
    let pad = top_pad family in
    barr.(n - 1).bf_fp <- stack_top - pad;
    for i = n - 2 downto 0 do
      let parent = barr.(i + 1) in
      let parent_sp = parent.bf_fp - parent.bf_depth in
      barr.(i).bf_fp <- parent_sp - linkage_bytes family
    done;
    (* relocate oldest first (highest destination) so overlapping moves
       never clobber records still to be moved *)
    for i = n - 1 downto 0 do
      let b = barr.(i) in
      let src_lo = prov_fp.(i) - b.bf_depth in
      let dst_lo = b.bf_fp - b.bf_depth in
      if src_lo <> dst_lo then
        Mem.blit_within mem ~src:src_lo ~dst:dst_lo ~len:b.bf_depth
    done;
    (* zero the abandoned provisional area (up to the final records) so
       stale values never alias *)
    let final_low = barr.(0).bf_fp - barr.(0).bf_depth in
    let prov_high = min !cursor final_low in
    if prov_high > stack_bottom + 64 then
      Mem.zero_fill mem (stack_bottom + 64) (prov_high - stack_bottom - 64);
    (* calling-convention linkage *)
    (match family with
    | A.Vax ->
      Array.iteri
        (fun i b ->
          let parent_fp = if i = n - 1 then 0 else barr.(i + 1).bf_fp in
          let ret = if i = n - 1 then 0 else barr.(i + 1).bf_resume_abs in
          Mem.store32 mem b.bf_fp (Int32.of_int parent_fp);
          Mem.store32 mem (b.bf_fp + 4) 0l;
          Mem.store32 mem (b.bf_fp + 8) (Int32.of_int ret))
        barr
    | A.M68k ->
      Array.iteri
        (fun i b ->
          let parent_fp = if i = n - 1 then 0 else barr.(i + 1).bf_fp in
          let ret = if i = n - 1 then 0 else barr.(i + 1).bf_resume_abs in
          Mem.store32 mem b.bf_fp (Int32.of_int parent_fp);
          Mem.store32 mem (b.bf_fp + 4) (Int32.of_int ret))
        barr
    | A.Sparc ->
      (* frame i's spill area holds frame i+1's register window: its FP and
         the address it will return to (frame i+2's resume point) *)
      Array.iteri
        (fun i b ->
          let sp = b.bf_fp - b.bf_depth in
          let parent_fp = if i = n - 1 then 0 else barr.(i + 1).bf_fp in
          let parent_ret = if i >= n - 2 then 0 else barr.(i + 2).bf_resume_abs in
          Mem.store32 mem (sp + sparc_i6_off) (Int32.of_int parent_fp);
          Mem.store32 mem (sp + sparc_i7_off) (Int32.of_int parent_ret))
        barr);
    (* register context for the youngest frame *)
    let ctx = M.create_ctx arch in
    let top = barr.(0) in
    M.set_fp ctx top.bf_fp;
    M.set_sp ctx (top.bf_fp - top.bf_depth);
    (match family with
    | A.Sparc ->
      M.set_reg ctx 31
        (Int32.of_int (if n >= 2 then barr.(1).bf_resume_abs else 0))
    | A.Vax | A.M68k -> ());
    ctx.M.pc <- top.bf_resume_abs;
    let seg =
      {
        T.seg_id = mi.Mi_frame.ms_seg_id;
        seg_thread = mi.Mi_frame.ms_thread;
        seg_status = status_of_mi k mi.Mi_frame.ms_status;
        seg_ctx = ctx;
        seg_stack_top = stack_top;
        seg_stack_bottom = stack_bottom;
        seg_link = mi.Mi_frame.ms_link;
        seg_result_type = mi.Mi_frame.ms_result_type;
        seg_spawn = None;
        seg_live = false;
      }
    in
    ctx.M.stack_limit <- stack_bottom;
    K.register_segment k seg;
    seg

let patch_segment_bottom k _seg frames =
  match List.rev frames with
  | [] -> ()
  | bottom :: rest_above_rev ->
    let mem = K.mem k in
    (match (K.arch k).A.family with
    | A.Vax ->
      Mem.store32 mem bottom.fw_fp 0l;
      Mem.store32 mem (bottom.fw_fp + 8) 0l
    | A.M68k ->
      Mem.store32 mem bottom.fw_fp 0l;
      Mem.store32 mem (bottom.fw_fp + 4) 0l
    | A.Sparc -> (
      (* the bottom frame's window is spilled in its child's spill area
         (the next frame up in this run); a single-frame run keeps its
         window in the context, handled by make_ctx_for_top *)
      match rest_above_rev with
      | [] -> ()
      | child :: _ ->
        let fi = K.frame_info k ~class_index:child.fw_class ~method_index:child.fw_method in
        let sp = child.fw_fp - fi.Emc.Busstop.fr_fixed_sp_depth in
        Mem.store32 mem (sp + sparc_i7_off) 0l))

let make_ctx_for_top k ~top ~below_resume =
  let arch = K.arch k in
  let ctx = M.create_ctx arch in
  M.set_fp ctx top.fw_fp;
  M.set_sp ctx (top.fw_fp - top.fw_entry.Emc.Busstop.be_sp_depth);
  (match arch.A.family with
  | A.Sparc -> M.set_reg ctx 31 (Int32.of_int below_resume)
  | A.Vax | A.M68k -> ());
  ctx.M.pc <- K.resume_abs k ~class_index:top.fw_class top.fw_entry;
  ctx
