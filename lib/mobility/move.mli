(** The object-and-thread move protocol (sections 3.5/3.6, and Example 1).

    Moving an object moves: the object's data area, every object reachable
    through [attached] fields, the monitor state (lock and waiter queue),
    and — the heart of the paper — the parts of every thread that are
    executing inside the moving objects.  A thread's stack is split into
    maximal runs of activation records by "does this record's object
    move?": moving runs are translated to machine-independent segments and
    shipped; staying runs are re-formed in place as dormant segments; the
    runs are chained with cross-node links so returns flow through the
    kernel (remote returns).

    The source leaves forwarding proxies for the moved objects and
    forwarding addresses for the moved segments. *)

type send = {
  snd_dest : int;
  snd_msg : Marshal.message;
}

val initiate :
  k:Ert.Kernel.t -> mover:Ert.Thread.segment -> obj_addr:int -> dest:int -> send list
(** Handle a [move X to n] system call.  Parks the mover at its bus stop
    (so it completes wherever it ends up, possibly on the destination),
    then either forwards a request (X not resident), completes locally
    (n is this node), or runs the full protocol. *)

val handle_move_req : k:Ert.Kernel.t -> obj:Ert.Oid.t -> dest:int -> forwards:int -> send list
(** A forwarded move request arriving at a node believed to host [obj]. *)

val initiate_evict :
  k:Ert.Kernel.t -> seg:Ert.Thread.segment -> dest:int -> send list
(** Handle a fired eviction trap ({!Ert.Kernel.evict_thread}).  The
    kernel has already captured [seg] at a bus stop; this ships the
    object the segment is executing inside via the normal move protocol
    (which drags along every other segment touching it, monitor queues
    included).  No mover thread exists, so nothing is re-enqueued
    locally.  Returns [[]] when [dest] is this node or the target object
    already left. *)

val perform_move : Ert.Kernel.t -> obj_addr:int -> dest:int -> Marshal.move_payload
(** Capture and evict; the caller sends the payload.  Exposed for tests. *)

val perform_group_move :
  Ert.Kernel.t -> roots:int list -> dest:int -> Marshal.move_payload
(** Capture several co-located root objects as one payload: the union of
    their attached closures (each object once), every thread segment
    executing inside any of them, and the monitor state — batched into a
    single transfer instead of one per root.  Non-resident roots are
    skipped.  The caller sends the payload as an [M_group_move]. *)

type apply_stats = {
  ap_objects : int;  (** objects installed *)
  ap_segments : int;  (** thread segments rebuilt *)
  ap_frames : int;  (** native activation records relocated *)
  ap_src_opt : int;
      (** source instance's optimization level ({!Emc.Opt.to_int}) *)
  ap_bridged : int;
      (** arriving threads whose parked stop had no exact correspondent
          here and landed through a bridge fragment *)
}

val apply_move : Ert.Kernel.t -> Marshal.move_payload -> apply_stats
(** Install an arriving move payload on the destination node; returns
    what was installed, for cost accounting and trace events. *)

val park_mover_for_test : Ert.Thread.segment -> unit
(** Park a mover segment at its move stop (normally done inside
    {!initiate}); exposed so tests can drive {!perform_move} directly. *)

val moving_closure : Ert.Kernel.t -> int -> int list
(** The object plus everything reachable through resident attached
    fields (addresses). *)
