(** Translation of thread state between machine-dependent and
    machine-independent formats — the core mechanism of the paper.

    Outbound ({!walk_frames} + {!capture_frame}): walk a suspended
    segment's activation records from the youngest down, using the frame
    pointers, the per-architecture frame geometry, and the bus-stop tables
    to name each suspension point machine-independently; extract the live
    entities' values through the per-stop template (sections 3.3, 3.5).

    Inbound ({!rebuild_segment}): translate machine-independent activation
    records back into native frames for the destination architecture —
    youngest first, into provisional positions, followed by the
    relocation pass the paper describes ("we could not know beforehand the
    size of the machine-dependent activation record stack ... we therefore
    had to do a relocation of all activation records within the allocated
    stack space", section 3.5) — then reconstruct the calling-convention
    linkage (saved frame pointers, return addresses, SPARC register-window
    spill areas) from the bus-stop geometry. *)

type frame_rec = Ert.Frame_walk.frame_rec = {
  fw_class : int;
  fw_method : int;
  fw_entry : Emc.Busstop.entry;  (** the bus stop where this record is suspended *)
  fw_fp : int;
  fw_ret_out : int;  (** absolute return address out of this frame; 0 at bottom *)
  fw_self : int;  (** local address of the object this record executes in *)
}

val walk_frames : Ert.Kernel.t -> Ert.Thread.segment -> frame_rec list
(** {!Ert.Frame_walk.walk}: youngest first; empty for a never-executed
    segment (spawn pending). *)

val capture_frame : Ert.Kernel.t -> frame_rec -> Mi_frame.mi_frame

val status_to_mi : Ert.Kernel.t -> Ert.Thread.segment -> Mi_frame.mi_status
(** Fails on a running or dead segment, and on a CPU-only suspension (the
    unified {!Isa.Suspend.t} passes through otherwise — there is no
    conversion step any more). *)

val result_type_of : Ert.Kernel.t -> class_index:int -> method_index:int -> Emc.Ast.typ option

val rebuild_segment : Ert.Kernel.t -> Mi_frame.mi_segment -> Ert.Thread.segment
(** Builds the native stack, registers the segment with the kernel and
    enqueues it if ready.  Blocked-on-monitor segments are installed with
    an empty queue linkage; the caller re-enqueues them in the marshalled
    queue order. *)

val patch_segment_bottom : Ert.Kernel.t -> Ert.Thread.segment -> frame_rec list -> unit
(** Make the given (in-place, staying) frames a well-formed segment whose
    bottom returns to the kernel: writes the sentinel return address into
    the bottom frame's linkage cells. *)

val make_ctx_for_top :
  Ert.Kernel.t -> top:frame_rec -> below_resume:int -> Isa.Machine.ctx
(** Fresh register context for a segment whose (staying, in-place) top
    frame is [top]; [below_resume] is the absolute resume PC of the frame
    below it in the same segment, or 0 when [top] is also the bottom. *)
