(** The machine-independent activation-record and thread-state formats.

    "We invented a new activation record format and used that as the
    machine-independent format.  The new activation record format stored
    all local variables in the activation record rather than in registers"
    (section 3.5).  Values are {!Ert.Value.t}s — typed, with no byte
    order, float format or local address in sight.  Program points are bus
    stop numbers; code is named by OID.

    A machine-independent {e segment} is a run of activation records
    (youngest first, the order they are translated in) plus the scheduling
    state needed to resume the thread on the destination: pending system
    call completions, awaited replies, monitor-queue membership — or, for
    a segment that never executed its first instruction, the spawn record
    itself. *)

type mi_frame = {
  mf_class : int;  (** class index (the code object's identity) *)
  mf_code_oid : int32;
  mf_method : int;
  mf_stop : int;  (** class-global bus-stop number where suspended *)
  mf_slots : (int * Ert.Value.t) array;
      (** template-slot index -> value, in wire order (the stop's live
          list), for the entities live at the stop; slot indices are
          architecture independent *)
  mf_self : Ert.Oid.t;  (** the object whose operation this record executes *)
}

type mi_status =
  | Ms_parked of Ert.Value.t Isa.Suspend.t
      (** only wire-encodable suspensions (see the {!Isa.Suspend} invariant
          table) appear here; writing a CPU-only one fails *)
  | Ms_awaiting_reply of int  (** stop id *)
  | Ms_blocked_monitor of {
      mon : Ert.Oid.t;
      in_queue : bool;
      cond : int;  (** -1: entry queue; otherwise a condition queue *)
      deadline : float option;
          (** a timed wait's absolute expiry in virtual microseconds *)
    }

type mi_segment = {
  ms_seg_id : int;
  ms_thread : int;
  ms_status : mi_status;
  ms_frames : mi_frame list;  (** youngest first *)
  ms_link : Ert.Thread.link option;
  ms_result_type : Emc.Ast.typ option;
  ms_spawn : Ert.Thread.spawn_info option;
      (** present (with [ms_frames = \[\]]) for never-executed segments *)
}

(* With [?plans], frame encoding routes through a compiled conversion
   plan when one applies (identical bytes, fused host work, identical
   Bulk-tier accounting); otherwise, and always for the segment
   scaffolding around the frames, the interpretive path is used. *)

(** [blit] selects the negotiated common-layout tier: byte-identical
    encoding through the raw wire primitives, accounted as one
    conversion call per frame (plus one for the segment scaffold and
    one for the trailing options) instead of one per datum.  Only valid
    when the source and destination {!Isa.Arch.fingerprint}s match;
    [plans] is ignored when [blit] is set. *)

val write_segment :
  ?plans:Conv_plan.use -> ?blit:bool -> Enet.Wire.Writer.t -> mi_segment -> unit

val read_segment :
  ?plans:Conv_plan.use -> ?blit:bool -> Enet.Wire.Reader.t -> mi_segment

val write_frame :
  ?plans:Conv_plan.use -> ?blit:bool -> Enet.Wire.Writer.t -> mi_frame -> unit

val read_frame :
  ?plans:Conv_plan.use -> ?blit:bool -> Enet.Wire.Reader.t -> mi_frame
val frame_count : mi_segment -> int
val pp_segment : Format.formatter -> mi_segment -> unit
