(* Thread checkpointing through the machine-independent format. *)

module K = Ert.Kernel
module T = Ert.Thread
module W = Enet.Wire

exception Not_checkpointable of string

let magic = 0x454d43l (* "EMC" *)

let segments_of_thread k ~thread =
  List.filter (fun s -> s.T.seg_thread = thread) (K.segments k)

let check_capturable (seg : T.segment) =
  match seg.T.seg_status with
  | T.Ready _ -> ()
  | T.Running -> raise (Not_checkpointable "segment is running")
  | T.Blocked_monitor _ ->
    raise (Not_checkpointable "segment is queued on a monitor; move the object instead")
  | T.Awaiting_reply _ ->
    raise (Not_checkpointable "segment awaits a remote reply; quiesce the thread first")
  | T.Dead -> raise (Not_checkpointable "segment is dead")

let to_mi k (seg : T.segment) : Mi_frame.mi_segment =
  let frames =
    match seg.T.seg_spawn with
    | Some _ -> []
    | None -> List.map (Translate.capture_frame k) (Translate.walk_frames k seg)
  in
  {
    Mi_frame.ms_seg_id = seg.T.seg_id;
    ms_thread = seg.T.seg_thread;
    ms_status = Translate.status_to_mi k seg;
    ms_frames = frames;
    ms_link = seg.T.seg_link;
    ms_result_type = seg.T.seg_result_type;
    ms_spawn = seg.T.seg_spawn;
  }

let capture k ~thread =
  let segs = segments_of_thread k ~thread in
  if segs = [] then raise (Not_checkpointable "thread has no segments on this node");
  List.iter check_capturable segs;
  List.iter
    (fun (s : T.segment) ->
      if s.T.seg_link <> None then
        raise (Not_checkpointable "thread spans several nodes"))
    segs;
  let stats = Enet.Conversion_stats.create () in
  let w = W.Writer.create ~impl:W.Bulk ~stats in
  W.Writer.u32 w magic;
  W.Writer.u16 w (List.length segs);
  List.iter (fun s -> Mi_frame.write_segment w (to_mi k s)) segs;
  (* translation is charged like an outbound move, once per frame *)
  List.iter
    (fun s ->
      let n = List.length (Translate.walk_frames k s) in
      K.charge_insns k (n * Cost_model.frame_translate_insns))
    segs;
  let image = W.Writer.contents w in
  W.Writer.free w;
  image

let suspend k ~thread =
  let image = capture k ~thread in
  List.iter (K.unregister_segment k) (segments_of_thread k ~thread);
  image

let parse image =
  let stats = Enet.Conversion_stats.create () in
  let r = W.Reader.create ~impl:W.Bulk ~stats image in
  if W.Reader.u32 r <> magic then invalid_arg "Checkpoint.parse: bad magic";
  let n = W.Reader.u16 r in
  List.init n (fun _ -> Mi_frame.read_segment r)

let restore k image =
  let segs = parse image in
  (* every frame's object must live here: frames execute against local
     object memory, and we refuse to resurrect a thread whose objects have
     moved on (move the objects back, or checkpoint after the move) *)
  List.iter
    (fun (ms : Mi_frame.mi_segment) ->
      List.iter
        (fun (f : Mi_frame.mi_frame) ->
          match K.find_object k f.Mi_frame.mf_self with
          | Some addr when K.is_resident k addr -> ()
          | _ ->
            raise
              (Not_checkpointable
                 (Printf.sprintf "object %ld of a checkpointed frame is not resident"
                    (f.Mi_frame.mf_self :> int32))))
        ms.Mi_frame.ms_frames)
    segs;
  List.iter
    (fun (ms : Mi_frame.mi_segment) ->
      if K.find_segment k ms.Mi_frame.ms_seg_id <> None then
        raise (Not_checkpointable "a segment with this id is already registered");
      let seg = Translate.rebuild_segment k ms in
      K.charge_insns k
        (List.length ms.Mi_frame.ms_frames * Cost_model.frame_translate_insns);
      ignore seg)
    segs

let thread_of image =
  match parse image with
  | [] -> invalid_arg "Checkpoint.thread_of: empty image"
  | ms :: _ -> ms.Mi_frame.ms_thread
