(* Thread checkpointing through the machine-independent format. *)

module K = Ert.Kernel
module T = Ert.Thread
module W = Enet.Wire

exception Not_checkpointable of string

(* Image format v2: the segment count is a u32.  v1 ("EMC", 0x454d43)
   wrote it as a u16, silently truncating a thread of more than 65535
   segments into an image that parsed cleanly but dropped segments —
   so v2 bumps the magic and v1 images are rejected outright rather
   than misread. *)
let magic = 0x454d4332l (* "EMC2" *)
let magic_v1 = 0x454d43l

let segments_of_thread k ~thread =
  List.filter (fun s -> s.T.seg_thread = thread) (K.segments k)

let check_capturable (seg : T.segment) =
  match seg.T.seg_status with
  | T.Parked s when Isa.Suspend.wire_encodable s -> ()
  | T.Parked _ -> raise (Not_checkpointable "segment carries a CPU-only suspension")
  | T.Running -> raise (Not_checkpointable "segment is running")
  | T.Blocked_monitor _ ->
    raise (Not_checkpointable "segment is queued on a monitor; move the object instead")
  | T.Awaiting_reply _ ->
    raise (Not_checkpointable "segment awaits a remote reply; quiesce the thread first")
  | T.Dead -> raise (Not_checkpointable "segment is dead")

let to_mi k (seg : T.segment) : Mi_frame.mi_segment =
  let frames =
    match seg.T.seg_spawn with
    | Some _ -> []
    | None -> List.map (Translate.capture_frame k) (Translate.walk_frames k seg)
  in
  {
    Mi_frame.ms_seg_id = seg.T.seg_id;
    ms_thread = seg.T.seg_thread;
    ms_status = Translate.status_to_mi k seg;
    ms_frames = frames;
    ms_link = seg.T.seg_link;
    ms_result_type = seg.T.seg_result_type;
    ms_spawn = seg.T.seg_spawn;
  }

let capture k ~thread =
  let segs = segments_of_thread k ~thread in
  if segs = [] then raise (Not_checkpointable "thread has no segments on this node");
  List.iter check_capturable segs;
  List.iter
    (fun (s : T.segment) ->
      if s.T.seg_link <> None then
        raise (Not_checkpointable "thread spans several nodes"))
    segs;
  let stats = Enet.Conversion_stats.create () in
  let w = W.Writer.create ~impl:W.Bulk ~stats in
  (* the writer's buffer may be pooled: a capture failure part-way
     through (an uncapturable frame, say) must still return it *)
  Fun.protect
    ~finally:(fun () -> W.Writer.free w)
    (fun () ->
      W.Writer.u32 w magic;
      W.Writer.u32 w (Int32.of_int (List.length segs));
      List.iter (fun s -> Mi_frame.write_segment w (to_mi k s)) segs;
      (* translation is charged like an outbound move, once per frame *)
      List.iter
        (fun s ->
          let n = List.length (Translate.walk_frames k s) in
          K.charge_insns k (n * Cost_model.frame_translate_insns))
        segs;
      W.Writer.contents w)

let suspend k ~thread =
  let image = capture k ~thread in
  List.iter (K.unregister_segment k) (segments_of_thread k ~thread);
  image

(* an image can hold at most this many segments before we call it
   corrupt rather than large — a plausibility bound, not a format
   limit, protecting [List.init] from an insane length prefix *)
let max_segments = 1_000_000

let parse image =
  let stats = Enet.Conversion_stats.create () in
  let r = W.Reader.create ~impl:W.Bulk ~stats image in
  let m = W.Reader.u32 r in
  if m = magic_v1 then
    invalid_arg "Checkpoint.parse: v1 image (u16 segment count) not supported";
  if m <> magic then invalid_arg "Checkpoint.parse: bad magic";
  let n = Int32.to_int (W.Reader.u32 r) in
  if n < 0 || n > max_segments then
    invalid_arg (Printf.sprintf "Checkpoint.parse: unreasonable segment count %d" n);
  List.init n (fun _ -> Mi_frame.read_segment r)

let restore k image =
  let segs = parse image in
  (* All validation happens before any segment is rebuilt, so a refused
     restore leaves the kernel exactly as it was.  (An earlier revision
     checked each segment id inside the rebuild loop: a collision on the
     second segment left the first one registered.) *)
  List.iter
    (fun (ms : Mi_frame.mi_segment) ->
      List.iter
        (fun (f : Mi_frame.mi_frame) ->
          match K.find_object k f.Mi_frame.mf_self with
          | Some addr when K.is_resident k addr -> ()
          | _ ->
            raise
              (Not_checkpointable
                 (Printf.sprintf "object %ld of a checkpointed frame is not resident"
                    (f.Mi_frame.mf_self :> int32))))
        ms.Mi_frame.ms_frames)
    segs;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (ms : Mi_frame.mi_segment) ->
      let id = ms.Mi_frame.ms_seg_id in
      if K.find_segment k id <> None then
        raise (Not_checkpointable "a segment with this id is already registered");
      if Hashtbl.mem seen id then
        raise (Not_checkpointable "image contains duplicate segment ids");
      Hashtbl.add seen id ())
    segs;
  List.iter
    (fun (ms : Mi_frame.mi_segment) ->
      let seg = Translate.rebuild_segment k ms in
      K.charge_insns k
        (List.length ms.Mi_frame.ms_frames * Cost_model.frame_translate_insns);
      ignore seg)
    segs

let thread_of image =
  match parse image with
  | [] -> invalid_arg "Checkpoint.thread_of: empty image"
  | ms :: _ -> ms.Mi_frame.ms_thread
