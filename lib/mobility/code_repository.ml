(* Fetch accounting is kept per node (not one shared list) so that the
   sharded cluster's domains can record fetches for their own nodes
   without synchronisation — which is also why the array is sized once
   at creation (the cluster knows its node count) and never grown:
   resizing mid-run would race the recording domains. *)
type t = {
  fetches : int list array;  (* per node, fetched class indexes, newest first *)
  plans : Conv_plan.cache;
  dispatch : Isa.Dispatch.cache array;
      (* per node, like the fetch lists: each node's kernel translates
         into its own cache, so sharded domains never share tables.
         Living here (not in the kernel) keeps translations across a
         node restart — the engine's memory-identity check voids the
         stale ones. *)
  bridges : Ert.Bridge.t array;
      (* per node, the compiled bridge fragments for cross-instance
         landings, kept beside the conversion plans as the paper keeps
         bridging routines with the code repository.  Fragments address
         kernel text, so the restart path clears them explicitly
         ({!Ert.Bridge.clear}); the hit/miss counters survive. *)
}

let create ?(n_nodes = 64) () =
  if n_nodes < 1 || n_nodes > Ert.Oid.max_nodes then
    invalid_arg "Code_repository.create: node count out of range";
  {
    fetches = Array.make n_nodes [];
    plans = Conv_plan.create_cache ();
    dispatch = Array.init n_nodes (fun _ -> Isa.Dispatch.create_cache ());
    bridges = Array.init n_nodes (fun _ -> Ert.Bridge.create ());
  }

let record_fetch t ~node ~class_index =
  if node < 0 || node >= Array.length t.fetches then
    invalid_arg "Code_repository.record_fetch: node id out of range";
  t.fetches.(node) <- class_index :: t.fetches.(node)

let total_fetches t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.fetches

let fetches_by_node t node = List.length t.fetches.(node)
let fetched_classes t ~node = List.rev t.fetches.(node)

let plan_cache t = t.plans

let dispatch_cache t ~node =
  if node < 0 || node >= Array.length t.dispatch then
    invalid_arg "Code_repository.dispatch_cache: node id out of range";
  t.dispatch.(node)

let bridge_cache t ~node =
  if node < 0 || node >= Array.length t.bridges then
    invalid_arg "Code_repository.bridge_cache: node id out of range";
  t.bridges.(node)

let bridge_stats t =
  Array.fold_left
    (fun (h, m) b -> (h + Ert.Bridge.hits b, m + Ert.Bridge.misses b))
    (0, 0) t.bridges
let set_program t prog = Conv_plan.set_program t.plans prog
