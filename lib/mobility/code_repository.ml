type t = {
  fetches : (int * int) list ref;  (* node, class *)
  plans : Conv_plan.cache;
}

let create () = { fetches = ref []; plans = Conv_plan.create_cache () }
let record_fetch t ~node ~class_index = t.fetches := (node, class_index) :: !(t.fetches)
let total_fetches t = List.length !(t.fetches)
let fetches_by_node t node = List.length (List.filter (fun (n, _) -> n = node) !(t.fetches))

let fetched_classes t ~node =
  List.rev
    (List.filter_map (fun (n, c) -> if n = node then Some c else None) !(t.fetches))

let plan_cache t = t.plans
let set_program t prog = Conv_plan.set_program t.plans prog
