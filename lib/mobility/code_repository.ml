(* Fetch accounting is kept per node (not one shared list) so that the
   sharded cluster's domains can record fetches for their own nodes
   without synchronisation.  64 slots matches Oid's node-id range. *)
type t = {
  fetches : int list array;  (* per node, fetched class indexes, newest first *)
  plans : Conv_plan.cache;
}

let max_nodes = 64

let create () =
  { fetches = Array.make max_nodes []; plans = Conv_plan.create_cache () }

let record_fetch t ~node ~class_index =
  if node < 0 || node >= max_nodes then
    invalid_arg "Code_repository.record_fetch: node id out of range";
  t.fetches.(node) <- class_index :: t.fetches.(node)

let total_fetches t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.fetches

let fetches_by_node t node = List.length t.fetches.(node)
let fetched_classes t ~node = List.rev t.fetches.(node)

let plan_cache t = t.plans
let set_program t prog = Conv_plan.set_program t.plans prog
