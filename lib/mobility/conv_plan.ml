module W = Enet.Wire.Writer
module R = Enet.Wire.Reader
module V = Ert.Value
module T = Emc.Template

type pair = {
  pr_src : Isa.Arch.t;
  pr_dst : Isa.Arch.t;
}

let pair_key p = p.pr_src.Isa.Arch.id ^ ">" ^ p.pr_dst.Isa.Arch.id

type hole_kind = H_i32 | H_f64 | H_bool

type hole = {
  h_off : int;  (* offset of the value bytes within the piece *)
  h_idx : int;  (* which value fills the hole *)
  h_kind : hole_kind;
}

type piece =
  | P_fixed of {
      skel : string;
      holes : hole array;
      p_calls : int;  (* precomputed Bulk-equivalent accounting *)
      p_bytes : int;
    }
  | P_value of int  (* value index, encoded per-datum (dynamic shape) *)

type section = {
  sp_count : int;
  sp_slots : int array;  (* u16 prefixes in wire order; [||] if unprefixed *)
  sp_kinds : hole_kind option array;  (* per value: fixed kind or dynamic *)
  sp_pieces : piece array;
  sp_fixed_bytes : int;
  sp_dyn : int;
  sp_strategy : string;
}

let section_count s = s.sp_count
let section_fixed_bytes s = s.sp_fixed_bytes
let section_dyn_count s = s.sp_dyn
let section_strategy s = s.sp_strategy

type frame_plan = {
  fp_class : int;
  fp_code_oid : int32;
  fp_method : int;
  fp_stop : int;
  fp_head : string;  (* class u16, code_oid u32, method u16, stop u16, self hole *)
  fp_section : section;
}

let frame_section fp = fp.fp_section

(* ------------------------------------------------------------------ *)
(* Compilation *)

let put16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let put32 b off v =
  let byte n = Char.chr (Int32.to_int (Int32.shift_right_logical v n) land 0xFF) in
  Bytes.set b off (byte 24);
  Bytes.set b (off + 1) (byte 16);
  Bytes.set b (off + 2) (byte 8);
  Bytes.set b (off + 3) (byte 0)

let fixed_kind : Emc.Ast.typ -> (int * hole_kind * int) option = function
  (* Only types the kernel always rematerialises into a single value
     constructor (see [Kernel.value_of_raw]) can be fused: their wire tag
     is a compile-time constant.  A string/object/vector/nil slot can
     hold Vnil at runtime, so its tag is dynamic. *)
  | Emc.Ast.Tint -> Some (V.tag_int, H_i32, 4)
  | Emc.Ast.Treal -> Some (V.tag_real, H_f64, 8)
  | Emc.Ast.Tbool -> Some (V.tag_bool, H_bool, 1)
  | Emc.Ast.Tstring | Emc.Ast.Tobj _ | Emc.Ast.Tvec _ | Emc.Ast.Tnil -> None

(* The strategy a real per-pair conversion routine would fuse to for the
   fixed bytes: the wire is big-endian IEEE, so a big-endian IEEE machine
   blits its native image while a little-endian or VAX-float endpoint
   adds swap / float-convert steps.  Homogeneous big-endian pairs
   therefore collapse to a single blit on both ends. *)
let strategy_of ~pair ~has_real =
  let side (a : Isa.Arch.t) =
    let swaps = match a.Isa.Arch.endian with
      | Isa.Endian.Little -> true
      | Isa.Endian.Big -> false
    in
    let fconv =
      has_real
      && not (Isa.Float_format.equal a.Isa.Arch.float_format Isa.Float_format.Ieee_single)
    in
    match swaps, fconv with
    | false, false -> "blit"
    | true, false -> "swap16/32"
    | false, true -> "fconv"
    | true, true -> "swap32/64+fconv"
  in
  let s = side pair.pr_src and d = side pair.pr_dst in
  if String.equal s "blit" && String.equal d "blit" then "blit"
  else s ^ ">" ^ d

let compile_section ~pair ~prefixed (elems : (int * Emc.Ast.typ) array) : section =
  let n = Array.length elems in
  let pieces = ref [] in
  let run = Buffer.create 64 in
  let holes = ref [] in
  let calls = ref 0 in
  let bytes = ref 0 in
  let fixed_bytes = ref 0 in
  let dyn = ref 0 in
  let has_real = ref false in
  let flush () =
    if Buffer.length run > 0 then begin
      let skel = Buffer.contents run in
      pieces :=
        P_fixed
          { skel; holes = Array.of_list (List.rev !holes); p_calls = !calls; p_bytes = !bytes }
        :: !pieces;
      fixed_bytes := !fixed_bytes + String.length skel;
      Buffer.clear run;
      holes := [];
      calls := 0;
      bytes := 0
    end
  in
  let const16 v =
    Buffer.add_char run (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char run (Char.chr (v land 0xFF));
    incr calls;
    bytes := !bytes + 2
  in
  (* the count prefix is itself a compile-time constant *)
  const16 n;
  Array.iteri
    (fun i (slot, ty) ->
      if prefixed then const16 slot;
      match fixed_kind ty with
      | Some (tag, kind, size) ->
        if kind = H_f64 then has_real := true;
        Buffer.add_char run (Char.chr tag);
        incr calls;
        bytes := !bytes + 1;
        holes := { h_off = Buffer.length run; h_idx = i; h_kind = kind } :: !holes;
        Buffer.add_string run (String.make size '\000');
        incr calls;
        bytes := !bytes + size
      | None ->
        incr dyn;
        flush ();
        pieces := P_value i :: !pieces)
    elems;
  flush ();
  {
    sp_count = n;
    sp_slots = (if prefixed then Array.map fst elems else [||]);
    sp_kinds = Array.map (fun (_, ty) -> Option.map (fun (_, k, _) -> k) (fixed_kind ty)) elems;
    sp_pieces = Array.of_list (List.rev !pieces);
    sp_fixed_bytes = !fixed_bytes;
    sp_dyn = !dyn;
    sp_strategy = strategy_of ~pair ~has_real:!has_real;
  }

let compile_frame ~pair (cc : Emc.Compile.compiled_class) ~stop =
  let ct = cc.Emc.Compile.cc_template in
  match T.stop_by_id ct stop with
  | exception Invalid_argument _ -> None
  | st ->
    let op = T.op_of_stop ct stop in
    let elems =
      Array.of_list (List.map (fun es -> (es.T.es_slot, es.T.es_type)) st.T.st_live)
    in
    let head = Bytes.make 14 '\000' in
    put16 head 0 cc.Emc.Compile.cc_index;
    put32 head 2 cc.Emc.Compile.cc_oid;
    put16 head 6 op.T.ot_index;
    put16 head 8 stop;
    (* bytes 10-13: the self-OID hole *)
    Some
      {
        fp_class = cc.Emc.Compile.cc_index;
        fp_code_oid = cc.Emc.Compile.cc_oid;
        fp_method = op.T.ot_index;
        fp_stop = stop;
        fp_head = Bytes.unsafe_to_string head;
        fp_section = compile_section ~pair ~prefixed:true elems;
      }

(* ------------------------------------------------------------------ *)
(* Encode / decode *)

let kind_matches k (v : V.t) =
  match k, v with
  | H_i32, V.Vint _ | H_f64, V.Vreal _ | H_bool, V.Vbool _ -> true
  | (H_i32 | H_f64 | H_bool), _ -> false

let section_applies s (value : int -> V.t) =
  let ok = ref true in
  Array.iteri
    (fun i ko ->
      match ko with
      | Some k -> if not (kind_matches k (value i)) then ok := false
      | None -> ())
    s.sp_kinds;
  !ok

let write_pieces s w (value : int -> V.t) =
  Array.iter
    (function
      | P_fixed { skel; holes; p_calls; p_bytes } ->
        let off = W.blit w skel in
        Array.iter
          (fun h ->
            match h.h_kind, value h.h_idx with
            | H_i32, V.Vint x -> W.poke32 w ~at:(off + h.h_off) x
            | H_f64, V.Vreal x -> W.poke64 w ~at:(off + h.h_off) (Int64.bits_of_float x)
            | H_bool, V.Vbool b -> W.poke8 w ~at:(off + h.h_off) (if b then 1 else 0)
            | (H_i32 | H_f64 | H_bool), _ -> assert false (* applies-checked *))
          holes;
        W.add_charge w ~calls:p_calls ~bytes:p_bytes
      | P_value i -> V.write w (value i))
    s.sp_pieces

let write_section s w value =
  if Array.length s.sp_kinds <> s.sp_count || not (section_applies s value) then false
  else begin
    write_pieces s w value;
    true
  end

(* [write_pieces] specialised to a slots array: no closure per frame *)
let write_pieces_slots s w (slots : (int * V.t) array) =
  Array.iter
    (function
      | P_fixed { skel; holes; p_calls; p_bytes } ->
        let off = W.blit w skel in
        Array.iter
          (fun h ->
            match h.h_kind, snd (Array.unsafe_get slots h.h_idx) with
            | H_i32, V.Vint x -> W.poke32 w ~at:(off + h.h_off) x
            | H_f64, V.Vreal x -> W.poke64 w ~at:(off + h.h_off) (Int64.bits_of_float x)
            | H_bool, V.Vbool b -> W.poke8 w ~at:(off + h.h_off) (if b then 1 else 0)
            | (H_i32 | H_f64 | H_bool), _ -> assert false (* applies-checked *))
          holes;
        W.add_charge w ~calls:p_calls ~bytes:p_bytes
      | P_value i -> V.write w (snd (Array.unsafe_get slots i)))
    s.sp_pieces

let read_section s r =
  match R.peek_u16 r with
  | Some n when n = s.sp_count ->
    let values = Array.make s.sp_count V.Vnil in
    Array.iter
      (function
        | P_fixed { skel; holes; p_calls; p_bytes } ->
          let off = R.block r (String.length skel) in
          Array.iter
            (fun h ->
              values.(h.h_idx) <-
                (match h.h_kind with
                | H_i32 -> V.Vint (R.get32_at r (off + h.h_off))
                | H_f64 -> V.Vreal (Int64.float_of_bits (R.get64_at r (off + h.h_off)))
                | H_bool -> V.Vbool (R.get8_at r (off + h.h_off) <> 0)))
            holes;
          R.add_charge r ~calls:p_calls ~bytes:p_bytes
        | P_value i -> values.(i) <- V.read r)
      s.sp_pieces;
    Some values
  | Some _ | None -> None

let write_frame fp w ~cls ~code_oid ~meth ~stop ~self ~(slots : (int * V.t) array) =
  let s = fp.fp_section in
  let applies =
    fp.fp_class = cls
    && Int32.equal fp.fp_code_oid code_oid
    && fp.fp_method = meth && fp.fp_stop = stop
    && Array.length slots = s.sp_count
    &&
    (* one pass: slot numbers and fixed-kind constructors together *)
    let ok = ref true in
    for i = 0 to s.sp_count - 1 do
      let sl, v = Array.unsafe_get slots i in
      if sl <> Array.unsafe_get s.sp_slots i then ok := false
      else
        match Array.unsafe_get s.sp_kinds i with
        | Some k -> if not (kind_matches k v) then ok := false
        | None -> ()
    done;
    !ok
  in
  if not applies then false
  else begin
    let off = W.blit w fp.fp_head in
    W.poke32 w ~at:(off + 10) self;
    (* class + code_oid + method + stop + self: five Bulk datums, 14 bytes *)
    W.add_charge w ~calls:5 ~bytes:14;
    write_pieces_slots s w slots;
    true
  end

let read_frame_slots fp r =
  (* like [read_section], but building the (slot, value) pairs directly *)
  let s = fp.fp_section in
  match R.peek_u16 r with
  | Some n when n = s.sp_count ->
    let slots = Array.make s.sp_count (0, V.Vnil) in
    Array.iter
      (function
        | P_fixed { skel; holes; p_calls; p_bytes } ->
          let off = R.block r (String.length skel) in
          Array.iter
            (fun h ->
              let v =
                match h.h_kind with
                | H_i32 -> V.Vint (R.get32_at r (off + h.h_off))
                | H_f64 -> V.Vreal (Int64.float_of_bits (R.get64_at r (off + h.h_off)))
                | H_bool -> V.Vbool (R.get8_at r (off + h.h_off) <> 0)
              in
              Array.unsafe_set slots h.h_idx (Array.unsafe_get s.sp_slots h.h_idx, v))
            holes;
          R.add_charge r ~calls:p_calls ~bytes:p_bytes
        | P_value i -> slots.(i) <- (s.sp_slots.(i), V.read r))
      s.sp_pieces;
    Some slots
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* The memo cache *)

type entry =
  | E_frame of frame_plan
  | E_fields of section
  | E_none  (* negative-cached: nothing to fuse for this key *)

type cache = {
  mutable cp_prog : Emc.Compile.program option;
  cp_pairs : (string, (int, entry) Hashtbl.t) Hashtbl.t;
      (* pair key -> per-pair plan table; sub-tables are reset in place on
         [set_program] so outstanding [use]s stay valid *)
  mutable cp_compiles : int;
  mutable cp_hits : int;
}

let create_cache () =
  { cp_prog = None; cp_pairs = Hashtbl.create 8; cp_compiles = 0; cp_hits = 0 }

let set_program c prog =
  c.cp_prog <- Some prog;
  Hashtbl.iter (fun _ tbl -> Hashtbl.reset tbl) c.cp_pairs

let compiles c = c.cp_compiles
let hits c = c.cp_hits

(* A [use] interns the pair once: the hot path looks plans up in the
   per-pair table with an immediate int key, no string hashing. *)
type use = {
  u_cache : cache;
  u_pair : pair;
  u_tbl : (int, entry) Hashtbl.t;
  (* two one-entry memos: migrations hit the same (class, stop)
     repeatedly, but a payload alternates frame and field-section
     lookups, so a single shared slot would thrash *)
  mutable u_frame_key : int;
  mutable u_frame : entry option;
  mutable u_fields_key : int;
  mutable u_fields : entry option;
}

let make_use cache pair =
  let key = pair_key pair in
  let tbl =
    match Hashtbl.find_opt cache.cp_pairs key with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 32 in
      Hashtbl.add cache.cp_pairs key t;
      t
  in
  {
    u_cache = cache;
    u_pair = pair;
    u_tbl = tbl;
    u_frame_key = min_int;
    u_frame = None;
    u_fields_key = min_int;
    u_fields = None;
  }

let class_of_prog prog class_index =
  let classes = prog.Emc.Compile.p_classes in
  if class_index < 0 || class_index >= Array.length classes then None
  else Some (Emc.Compile.class_by_index prog class_index)

let lookup_slow use ~key ~class_index ~compile =
  let c = use.u_cache in
  match Hashtbl.find_opt use.u_tbl key with
  | Some e ->
    c.cp_hits <- c.cp_hits + 1;
    Some e
  | None -> (
    match c.cp_prog with
    | None -> None
    | Some prog -> (
      match class_of_prog prog class_index with
      | None -> None
      | Some cc ->
        c.cp_compiles <- c.cp_compiles + 1;
        let e = compile cc in
        Hashtbl.add use.u_tbl key e;
        Some e))

let frame_plan_for use ~class_index ~stop =
  let key = (class_index lsl 16) lor (stop land 0xFFFF) in
  let entry =
    if use.u_frame_key = key then begin
      use.u_cache.cp_hits <- use.u_cache.cp_hits + 1;
      use.u_frame
    end
    else begin
      let e =
        lookup_slow use ~key ~class_index ~compile:(fun cc ->
            match compile_frame ~pair:use.u_pair cc ~stop with
            | Some fp -> E_frame fp
            | None -> E_none)
      in
      (match e with
      | Some _ ->
        use.u_frame_key <- key;
        use.u_frame <- e
      | None -> ());
      e
    end
  in
  match entry with
  | Some (E_frame fp) -> Some fp
  | Some (E_fields _ | E_none) | None -> None

let section_fuses s =
  Array.exists
    (function P_fixed { holes; _ } -> Array.length holes > 0 | P_value _ -> false)
    s.sp_pieces

let fields_plan_for use ~class_index =
  let key = (class_index lsl 16) lor 0xFFFF (* stop = -1 *) in
  let entry =
    if use.u_fields_key = key then begin
      use.u_cache.cp_hits <- use.u_cache.cp_hits + 1;
      use.u_fields
    end
    else begin
      let e =
        lookup_slow use ~key ~class_index ~compile:(fun cc ->
            let ct = cc.Emc.Compile.cc_template in
            let elems = Array.map (fun (_, ty) -> (0, ty)) ct.T.ct_fields in
            let s = compile_section ~pair:use.u_pair ~prefixed:false elems in
            (* a section with nothing to fuse beyond its count prefix is
               negative-cached: the interpretive path emits the same bytes
               with the same accounting, without the plan machinery *)
            if section_fuses s then E_fields s else E_none)
      in
      (match e with
      | Some _ ->
        use.u_fields_key <- key;
        use.u_fields <- e
      | None -> ());
      e
    end
  in
  match entry with
  | Some (E_fields s) -> Some s
  | Some (E_frame _ | E_none) | None -> None

let describe use ~class_index ~stop =
  match frame_plan_for use ~class_index ~stop with
  | None -> None
  | Some fp ->
    let s = fp.fp_section in
    Some
      (Printf.sprintf
         "plan class=%d stop=%d [%s]: %d slots, %d skeleton bytes in %d piece(s), %d dynamic"
         fp.fp_class fp.fp_stop s.sp_strategy s.sp_count (14 + s.sp_fixed_bytes)
         (Array.length s.sp_pieces) s.sp_dyn)
