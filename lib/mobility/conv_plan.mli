(** Compiled conversion plans.

    The prototype re-interprets the class template slot-by-slot on every
    migration; this module compiles a [(template, src-arch, dst-arch)]
    triple {e once} into a flat array of fused ops — a skeleton blit of
    all the constant bytes of a frame or field section (tags, slot
    numbers, header fields) with {e holes} poked with the fixed-size
    values, falling back to per-datum encoding only for dynamically
    shaped values (strings, references, vectors, nil-able slots).

    Plans are memoized in the {!Code_repository}, keyed by
    [(code OID, stop, arch pair)].  The wire format is the
    commonly-agreed-upon network format of section 2.1, so the emitted
    {e bytes} are pair-independent; what the pair determines is the
    conversion {e strategy} the plan records (a homogeneous big-endian
    pair collapses to a single blit of the native image; a pair with a
    byte-swapped or VAX-float endpoint adds swap and float-convert
    steps), mirroring the per-pair conversion routines of section 3.6.

    Accounting: a plan charges exactly what the interpretive [Bulk] tier
    would charge for the same datums (precomputed at plan-compile time),
    so virtual-time results are bit-identical between the [Bulk] and
    [Plan] tiers; only host-side work changes. *)

type pair = {
  pr_src : Isa.Arch.t;
  pr_dst : Isa.Arch.t;
}

val pair_key : pair -> string

(** A compiled plan for a sequence of values: the count prefix, optional
    u16 slot-number prefixes, tags and fixed-size payloads are fused
    into skeleton pieces; dynamic values interleave as per-datum ops. *)
type section

val section_count : section -> int
(** Number of values the plan covers. *)

val section_fixed_bytes : section -> int
(** Bytes covered by skeleton pieces (including the count prefix). *)

val section_dyn_count : section -> int
(** Values that still encode per-datum (dynamically shaped). *)

val section_strategy : section -> string
(** The fused conversion strategy for the arch pair, e.g. ["blit"] for a
    homogeneous big-endian pair or ["swap32/64+fconv"] with a VAX
    endpoint. *)

type frame_plan
(** A {!section} plus the fused 14-byte frame header
    (class, code OID, method, stop, self-hole). *)

val frame_section : frame_plan -> section

(** {1 Compilation} *)

val compile_section : pair:pair -> prefixed:bool -> (int * Emc.Ast.typ) array -> section
(** [compile_section ~pair ~prefixed elems] compiles a plan for values
    declared with the given types, in wire order.  When [prefixed], each
    value is preceded by a u16 slot-number prefix ([fst elems.(i)]),
    fused into the skeleton.  Exposed for property tests; normal clients
    go through the {!cache}. *)

val compile_frame :
  pair:pair -> Emc.Compile.compiled_class -> stop:int -> frame_plan option
(** Plan for the activation-record encoding of a class suspended at a
    bus stop ([None] if the class has no such stop). *)

(** {1 Encode / decode through a plan}

    Encoders pre-check that the plan {e applies} (value constructors
    match the declared fixed kinds, slot numbers and header fields
    match) before writing anything, so a fused encode never partially
    writes; on mismatch the caller falls back to the interpretive path,
    which produces the same bytes by construction.  Decoders verify the
    count prefix and fall back likewise without consuming input. *)

val write_section : section -> Enet.Wire.Writer.t -> (int -> Ert.Value.t) -> bool
(** [write_section s w value] emits [s.count] values ([value i] in wire
    order); false (nothing written) if the plan does not apply. *)

val read_section : section -> Enet.Wire.Reader.t -> Ert.Value.t array option

val write_frame :
  frame_plan ->
  Enet.Wire.Writer.t ->
  cls:int ->
  code_oid:int32 ->
  meth:int ->
  stop:int ->
  self:Ert.Oid.t ->
  slots:(int * Ert.Value.t) array ->
  bool

val read_frame_slots : frame_plan -> Enet.Wire.Reader.t -> (int * Ert.Value.t) array option
(** Fused decode of the slot section (the caller has already read the
    frame header interpretively in order to look the plan up). *)

(** {1 The memo cache}

    Held by the {!Code_repository}; populated lazily from the loaded
    program.  [stop = -1] keys a class's field-section plan. *)

type cache

val create_cache : unit -> cache

val set_program : cache -> Emc.Compile.program -> unit
(** Invalidates all cached plans (the key space is per-program). *)

val compiles : cache -> int
val hits : cache -> int

(** A cache bound to a concrete arch pair: what en/decoders thread
    through the move path.  [make_use] interns the pair so the hot path
    looks plans up with an immediate int key, plus a one-entry memo.
    A [use] must not outlive a {!set_program} call on its cache — create
    a fresh one per en/decode (they are cheap). *)
type use

val make_use : cache -> pair -> use

val frame_plan_for : use -> class_index:int -> stop:int -> frame_plan option
val fields_plan_for : use -> class_index:int -> section option

val describe : use -> class_index:int -> stop:int -> string option
(** Human-readable plan description for [emdis]/debugging. *)
